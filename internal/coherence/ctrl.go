package coherence

import (
	"fmt"

	"dstore/internal/cache"
	"dstore/internal/interconnect"
	"dstore/internal/memsys"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// CtrlConfig describes a coherent cache controller. The CPU cache
// complex uses both levels (an L1D shadow over the protocol-level L2);
// each GPU L2 slice uses only the L2 array (GPU L1s are non-coherent
// and live in the gpu package).
type CtrlConfig struct {
	Name string
	// L2 is the protocol-level array.
	L2 cache.Config
	// L1 optionally shadows the L2 (CPU L1D). L1 is write-through to
	// the L2 with silent clean evictions; protocol state lives only at
	// the L2.
	L1 *cache.Config
	// L1HitLat and L2HitLat are lookup latencies in ticks.
	L1HitLat sim.Tick
	L2HitLat sim.Tick
	// MSHRs bounds outstanding distinct misses.
	MSHRs int
	// DirectGetx, when set, models the paper's §III-F sequence
	// literally: each direct-store push is preceded by a GETX control
	// message on the dedicated network before the PUTX data message.
	DirectGetx bool
	// OnDemandMiss, when set, fires for every demand miss that
	// allocates an MSHR (not for merges). The prefetcher used by the
	// paper's prefetching comparison hangs off this hook.
	OnDemandMiss func(line memsys.Addr)
	// BypassDirtyVictim makes demand fills that would evict a dirty
	// line bypass the cache instead (no-allocate): loads complete from
	// the fill data and stores write through. The GPU L2 slices use
	// this so a streaming miss burst cannot churn pushed (dirty) lines
	// out one writeback at a time.
	BypassDirtyVictim bool
	// DirectOverXbar routes pushes over the shared crossbar instead of
	// the dedicated network — the ablation for §III-G's added link.
	DirectOverXbar bool
	// PushWriteThrough makes pushes also update memory, installing the
	// line exclusive-clean (M) instead of MM — the ablation for the
	// paper's choice of MM as the install state (§III-F).
	PushWriteThrough bool
}

// Ctrl is a coherent cache controller speaking the Hammer protocol with
// the memory controller, extended with the direct-store operations:
// sending pushes (CPU side) and receiving PUTX installs (GPU L2 slice
// side).
type Ctrl struct {
	engine *sim.Engine
	cfg    CtrlConfig
	name   string
	xbar   interconnect.Network
	mem    *MemCtrl

	l1   *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHR
	// lines is the dense per-line protocol state: the resident data
	// version plus the in-flight writeback buffer and its staleness
	// mark (see lineState). The staleness mark was found by the model
	// checker: without it, a load after a remote store returns the
	// pre-store data.
	lines lineTab[lineState]
	// wbCount tracks the number of lsWB entries (telemetry gauge).
	wbCount int
	// remotePending holds uncacheable direct-region loads awaiting
	// data.
	remotePending map[memsys.Addr][]*memsys.Request
	stalled       []*memsys.Request
	portFree      sim.Tick

	// Direct-store send side (CPU controller only).
	directLink interconnect.DirectPort
	pushTarget func(memsys.Addr) *Ctrl

	// Fault injection and recovery (chaos runs only; all nil/zero in
	// normal operation, leaving behaviour byte-identical).
	hooks       *ChaosHooks
	res         ResilienceConfig
	onFatal     func(error)
	pushSeq     uint64
	pushPending map[uint64]*pendingPush
	appliedPush map[uint64]bool
	lastPushVer map[memsys.Addr]uint64

	// Observability (AttachObserver): nil in normal operation. Every
	// recording site is guarded by a nil check, so a detached controller
	// pays one predictable branch and behaviour stays byte-identical.
	obs    *obs.Observer
	obsID  obs.CompID
	obsMem obs.CompID

	counters     *stats.Set
	probesRecv   *stats.Counter
	wbSent       *stats.Counter
	pushesRecv   *stats.Counter
	directStores *stats.Counter
	remoteLoads  *stats.Counter
	mshrStalls   *stats.Counter
	upgrades     *stats.Counter
	pushOverflow *stats.Counter
	bypasses     *stats.Counter
	pushNacks    *stats.Counter
	pushRetries  *stats.Counter
}

// NewCtrl builds a controller, creating its cache arrays, and registers
// it with the memory controller.
func NewCtrl(engine *sim.Engine, cfg CtrlConfig, xbar interconnect.Network, mem *MemCtrl) *Ctrl {
	if cfg.MSHRs <= 0 {
		panic(fmt.Sprintf("coherence %s: non-positive MSHR count", cfg.Name))
	}
	c := &Ctrl{
		engine:        engine,
		cfg:           cfg,
		name:          cfg.Name,
		xbar:          xbar,
		mem:           mem,
		l2:            cache.New(cfg.L2),
		mshr:          cache.NewMSHR(cfg.MSHRs),
		remotePending: make(map[memsys.Addr][]*memsys.Request),
		counters:      stats.NewSet(),
	}
	if cfg.L1 != nil {
		c.l1 = cache.New(*cfg.L1)
	}
	c.probesRecv = c.counters.Counter("probes_received")
	c.wbSent = c.counters.Counter("writebacks_sent")
	c.pushesRecv = c.counters.Counter("pushes_received")
	c.directStores = c.counters.Counter("direct_stores")
	c.remoteLoads = c.counters.Counter("remote_loads")
	c.mshrStalls = c.counters.Counter("mshr_stalls")
	c.upgrades = c.counters.Counter("upgrades")
	c.pushOverflow = c.counters.Counter("pushes_overflowed")
	c.bypasses = c.counters.Counter("fill_bypasses")
	c.pushNacks = c.counters.Counter("push_nacks")
	c.pushRetries = c.counters.Counter("push_retries")
	mem.AddPeer(c)
	return c
}

// Name returns the controller's network port name.
func (c *Ctrl) Name() string { return c.name }

// Counters exposes the controller's statistics.
func (c *Ctrl) Counters() *stats.Set { return c.counters }

// L2Cache exposes the protocol-level array (for statistics: accesses,
// hits, misses, evictions).
func (c *Ctrl) L2Cache() *cache.Cache { return c.l2 }

// L1Cache exposes the optional shadow array; nil when absent.
func (c *Ctrl) L1Cache() *cache.Cache { return c.l1 }

// WBBufLen returns the number of in-flight buffered writebacks
// (telemetry gauge).
func (c *Ctrl) WBBufLen() int { return c.wbCount }

// MSHRInUse returns the number of allocated MSHR entries (telemetry
// gauge).
func (c *Ctrl) MSHRInUse() int { return c.mshr.Len() }

// State returns the protocol state of a line (test hook).
func (c *Ctrl) State(a memsys.Addr) State {
	st, _, ok := c.l2.Probe(a)
	if !ok {
		return I
	}
	return st
}

// Ver returns the resident version of a line, or 0 (test hook).
func (c *Ctrl) Ver(a memsys.Addr) uint64 { return c.lines.at(memsys.LineAlign(a)).ver }

// AttachDirectStore wires the CPU-side push path: the dedicated link
// and the slice-routing function (paper §III-G).
func (c *Ctrl) AttachDirectStore(link interconnect.DirectPort, target func(memsys.Addr) *Ctrl) {
	c.directLink = link
	c.pushTarget = target
}

// AttachObserver connects the controller to the observability layer:
// protocol sends, state transitions and pushes record against the
// controller's component; demand accesses on the arrays flow through
// cache access hooks. gpuSide marks GPU L2 slices, whose accesses feed
// the sampler's miss-rate window and the push-to-first-use histogram.
func (c *Ctrl) AttachObserver(o *obs.Observer, gpuSide bool) {
	if o == nil {
		return
	}
	c.obs = o
	c.obsID = o.Component(c.name)
	c.obsMem = o.Component(c.mem.Name())
	namer := c.mem.protocol().StateName
	o.SetStateNamer(func(s uint8) string { return namer(State(s)) })
	c.l2.SetAccessHook(func(a memsys.Addr, hit bool) {
		o.CacheAccess(c.engine.Now(), c.obsID, a, 2, hit, gpuSide)
	})
	if c.l1 != nil {
		c.l1.SetAccessHook(func(a memsys.Addr, hit bool) {
			o.CacheAccess(c.engine.Now(), c.obsID, a, 1, hit, gpuSide)
		})
	}
}

// msgClassFor maps a protocol request type to its obs message class.
func msgClassFor(t ReqType) obs.MsgClass {
	switch t {
	case GETS:
		return obs.MsgGETS
	case GETX:
		return obs.MsgGETX
	case WB:
		return obs.MsgWB
	default:
		return obs.MsgRemoteLoad
	}
}

// obsSend records a request-message send to the memory controller.
func (c *Ctrl) obsSend(msg ReqMsg) {
	c.obs.Msg(c.engine.Now(), c.obsID, msgClassFor(msg.Type), msg.Addr, c.obsMem)
}

// obsState records a protocol state transition on a line.
func (c *Ctrl) obsState(line memsys.Addr, from, to State) {
	if from != to {
		c.obs.StateChange(c.engine.Now(), c.obsID, line, uint8(from), uint8(to))
	}
}

// Access submits a demand load or store. The controller's single port
// accepts one request per tick; overlapping submissions queue. Injected
// controller stalls (chaos runs) extend the port occupancy.
func (c *Ctrl) Access(req *memsys.Request) {
	now := c.engine.Now()
	start := now
	if c.portFree > start {
		start = c.portFree
	}
	start += c.stallTicks()
	c.portFree = start + 1
	pk := c.mem.pkt(pkProcess)
	pk.c, pk.req = c, req
	c.engine.ScheduleArgAt(start, runPkt, pk)
}

// process runs a newly submitted access against the arrays, counting
// one demand access (hit or miss).
func (c *Ctrl) process(req *memsys.Request) { c.processReq(req, false) }

// processQuiet re-runs a request that was already counted and then
// stalled or replayed: the arrays are consulted without statistics so
// retries stay invisible to the access/miss counters (Ruby-style
// accounting).
func (c *Ctrl) processQuiet(req *memsys.Request) { c.processReq(req, true) }

func (c *Ctrl) processReq(req *memsys.Request, quiet bool) {
	lookupL2 := c.l2.Lookup
	if quiet {
		lookupL2 = c.l2.Touch
	}
	line := memsys.LineAlign(req.Addr)
	switch req.Type {
	case memsys.Load, memsys.IFetch:
		if c.l1 != nil {
			hit := false
			if quiet {
				_, hit = c.l1.Touch(line)
			} else {
				_, hit = c.l1.Lookup(line)
			}
			if hit {
				req.Ver = c.lines.at(line).ver
				c.complete(req, c.cfg.L1HitLat)
				return
			}
		}
		if st, hit := lookupL2(line); hit && Transition(st, EvLoadHit).OK {
			c.fillL1(line)
			req.Ver = c.lines.at(line).ver
			c.complete(req, c.cfg.L1HitLat+c.cfg.L2HitLat)
			return
		}
		c.missPath(req, line, false)
	case memsys.Store:
		st, hit := lookupL2(line)
		switch out := Transition(st, EvStoreHit); {
		case hit && out.OK:
			// MM commits in place; M is the paper's silent M→MM
			// upgrade (stores are not allowed in M, but no other node
			// holds a copy, so the controller upgrades locally).
			if out.Next != st {
				c.l2.SetState(line, out.Next)
				c.obsState(line, st, out.Next)
			}
			c.localWrite(line, req)
		case hit: // S or O: must invalidate other copies first
			c.upgrades.Inc()
			c.missPath(req, line, true)
		default:
			c.missPath(req, line, true)
		}
	case memsys.RemoteStore:
		c.processDirectStore(req, line)
	default:
		panic(fmt.Sprintf("coherence %s: unknown access type %v", c.name, req.Type))
	}
}

// localWrite commits a store that already has MM permission.
func (c *Ctrl) localWrite(line memsys.Addr, req *memsys.Request) {
	c.l2.SetDirty(line, true)
	c.lines.at(line).ver = req.Ver
	if c.l1 != nil && c.l1.Contains(line) {
		c.l1.SetDirty(line, true)
	}
	c.complete(req, c.cfg.L1HitLat+c.cfg.L2HitLat)
}

// fillL1 mirrors a line into the L1 shadow. L1 victims are silent: the
// L1 is write-through, so the L2 always has the data and the dirty bit.
func (c *Ctrl) fillL1(line memsys.Addr) {
	if c.l1 == nil {
		return
	}
	c.l1.Insert(line, 1, false)
}

func (c *Ctrl) complete(req *memsys.Request, lat sim.Tick) {
	c.engine.ScheduleArg(lat, completeReq, req)
}

// sendReq ships a request message to the memory controller over the
// shared network via a pooled packet.
func (c *Ctrl) sendReq(msg ReqMsg, size int) {
	c.obsSend(msg)
	pk := c.mem.pkt(pkRecvReq)
	pk.rmsg = msg
	c.xbar.SendArg(c.name, c.mem.Name(), size, runPkt, pk)
}

// missPath sends the demand miss into the protocol.
func (c *Ctrl) missPath(req *memsys.Request, line memsys.Addr, wantX bool) {
	if ls := c.lines.at(line); ls.flags&lsWB != 0 && !wantX && ls.flags&lsWBStale == 0 {
		// The line is in our own writeback buffer (dirty eviction or
		// overflowed push still in flight to memory): loads are served
		// locally — we are still the data source until memory
		// acknowledges. Stores must NOT reclaim the line silently:
		// another agent may hold a shared copy granted from this very
		// buffer, so write permission requires the full GETX
		// invalidation round (a silent reclaim here was an SWMR
		// violation found by the model checker). Stale entries (the
		// line was since granted exclusively elsewhere) fall through
		// for loads too.
		req.Ver = ls.wbVer
		c.complete(req, c.cfg.L2HitLat)
		return
	}
	if e, ok := c.mshr.Lookup(line); ok {
		e.Waiters = append(e.Waiters, req)
		if wantX {
			e.WantExclusive = true
		}
		return
	}
	if c.mshr.Full() {
		c.mshrStalls.Inc()
		c.stalled = append(c.stalled, req)
		return
	}
	e, _ := c.mshr.Allocate(line)
	e.Waiters = append(e.Waiters, req)
	e.WantExclusive = wantX
	rtype := GETS
	if wantX {
		rtype = GETX
	}
	c.sendReq(ReqMsg{Type: rtype, Addr: line, From: c.name}, interconnect.CtrlMsgBytes)
	if c.cfg.OnDemandMiss != nil && req.Done != nil {
		c.cfg.OnDemandMiss(line)
	}
}

// Prefetch injects a read fill for a line without a demand requester:
// no access/hit/miss is counted and no waiter completes — the line just
// arrives. Already-resident and already-pending lines are skipped, as
// is a full MSHR file (prefetches never stall demand traffic).
func (c *Ctrl) Prefetch(line memsys.Addr) {
	line = memsys.LineAlign(line)
	if c.l2.Contains(line) {
		return
	}
	if _, pending := c.mshr.Lookup(line); pending {
		return
	}
	if c.mshr.Full() {
		return
	}
	e, _ := c.mshr.Allocate(line)
	_ = e
	c.sendReq(ReqMsg{Type: GETS, Addr: line, From: c.name}, interconnect.CtrlMsgBytes)
}

// RemoteLoad submits an uncacheable load to the direct-store region
// (the CPU reading GPU-homed data back, e.g. kernel results). Data is
// fetched from wherever it lives but never installed locally.
func (c *Ctrl) RemoteLoad(req *memsys.Request) {
	now := c.engine.Now()
	start := now
	if c.portFree > start {
		start = c.portFree
	}
	c.portFree = start + 1
	pk := c.mem.pkt(pkRemoteLoad)
	pk.c, pk.req = c, req
	c.engine.ScheduleArgAt(start, runPkt, pk)
}

// remoteLoadStart runs a remote load once its port slot arrives.
func (c *Ctrl) remoteLoadStart(req *memsys.Request) {
	line := memsys.LineAlign(req.Addr)
	c.remoteLoads.Inc()
	waiting := c.remotePending[line]
	c.remotePending[line] = append(waiting, req)
	if len(waiting) > 0 {
		return // request already in flight
	}
	c.sendReq(ReqMsg{Type: RemoteLoad, Addr: line, From: c.name}, interconnect.CtrlMsgBytes)
}

// processDirectStore performs the remote-store transition of Fig. 3:
// whatever state the line held locally goes to I, and the data travels
// over the dedicated network to the owning GPU L2 slice as a PUTX.
//
// Precondition (enforced by the TLB in a real system, and by the cpu
// package here): a line in the direct-store region is *only* ever
// written via this path. Pushes bypass the ordering point, which is
// sound precisely because the reserved region "can never be cached on
// the CPU side" (§III-E) — concurrently issuing cacheable GETX stores
// to the same line would race the push and is outside the protocol.
func (c *Ctrl) processDirectStore(req *memsys.Request, line memsys.Addr) {
	if c.directLink == nil || c.pushTarget == nil {
		panic(fmt.Sprintf("coherence %s: direct store issued but no direct network attached", c.name))
	}
	c.directStores.Inc()
	// Remote store from I/S/M/MM always ends in I locally (bold
	// transitions in Fig. 3) — one row of the shared table, consulted so
	// tablecover ties this handler to its declared transitions. The
	// direct region is never CPU-cached in translated programs, so the
	// non-I rows are defensive.
	if c.l1 != nil {
		c.l1.Invalidate(line)
	}
	if st, _, hit := c.l2.Probe(line); hit {
		out := Transition(st, EvDirectStore)
		if !out.OK {
			panic(fmt.Sprintf("coherence %s: direct store illegal from %s", c.name, StateName(st)))
		}
		c.obsState(line, st, out.Next)
		c.l2.Invalidate(line)
		c.lines.at(line).ver = 0
	}
	target := c.pushTarget(line)
	if target == nil {
		panic(fmt.Sprintf("coherence %s: no push target for %#x", c.name, uint64(line)))
	}
	p := PutxMsg{Addr: line, Ver: req.Ver, From: c.name}
	if c.obs != nil {
		to := c.obs.Component(target.name)
		now := c.engine.Now()
		c.obs.Push(now, c.obsID, line, to)
		c.obs.Msg(now, c.obsID, obs.MsgPutx, line, to)
	}
	if c.res.Enabled {
		// Resilient push (chaos runs): sequence-numbered, acknowledged,
		// retried with exponential backoff on loss or NACK. The store
		// completes when the ack arrives, not when the PUTX leaves.
		c.sendResilientPush(p, req, target)
		return
	}
	pk := c.mem.pkt(pkRecvPutx)
	pk.c, pk.putx, pk.req = target, p, req
	if c.cfg.DirectOverXbar {
		// Ablation: no dedicated network — the push rides the shared
		// coherence crossbar and contends with everything else.
		if c.cfg.DirectGetx {
			c.xbar.Send(c.name, target.name, interconnect.CtrlMsgBytes, nil)
		}
		c.xbar.SendArg(c.name, target.name, interconnect.DataMsgBytes, runPkt, pk)
		return
	}
	if c.cfg.DirectGetx {
		// The paper's CPU "will issue GETX command" before the data
		// travels; on the dedicated network this is a control flit
		// ahead of the PUTX.
		c.directLink.Send(interconnect.CtrlMsgBytes, nil)
	}
	c.directLink.SendArg(interconnect.DataMsgBytes, runPkt, pk)
}

// ReceivePutx installs a pushed line (GPU L2 slice side): the blue
// dashed I→MM transition of Fig. 3. A push supersedes any fill in
// flight for the same line. When the target set is full of valid
// lines, the push overflows to DRAM instead of evicting — the paper's
// "if the GPU L2 cache is full, the system then writes data to DRAM" —
// so a working set larger than the L2 keeps its oldest pushed prefix
// resident rather than churning every line through the cache.
func (c *Ctrl) ReceivePutx(p PutxMsg, req *memsys.Request) {
	if p.Seq != 0 {
		// Resilient protocol: req stays with the sender (the push may
		// be retried or duplicated); delivery is acknowledged instead.
		c.receivePutxResilient(p)
		return
	}
	c.applyPutx(p)
	c.complete(req, c.cfg.L2HitLat)
}

// applyPutx performs the install itself, shared between the
// fire-and-forget and resilient paths.
func (c *Ctrl) applyPutx(p PutxMsg) {
	c.pushesRecv.Inc()
	line := p.Addr
	_, pending := c.mshr.Lookup(line)
	if !pending && c.l2.SetFull(line) {
		c.pushOverflow.Inc()
		c.bufferWriteback(line, p.Ver)
		c.sendReq(ReqMsg{Type: WB, Addr: line, From: c.name, Ver: p.Ver}, interconnect.DataMsgBytes)
		return
	}
	if pending {
		e, _ := c.mshr.Lookup(line)
		e.Superseded = true
	}
	// Consult the push row for the resident state (I when absent; a
	// retry or a line the slice read back in M lands on a valid copy).
	cur, _, _ := c.l2.Probe(line)
	out := Transition(cur, PushEvent(c.cfg.PushWriteThrough))
	if !out.OK {
		panic(fmt.Sprintf("coherence %s: push install illegal from %s", c.name, StateName(cur)))
	}
	st, dirty := out.Next, out.Dirty == DirtySet
	if c.cfg.PushWriteThrough {
		// Ablation: pushes write through to memory and install
		// exclusive-clean, so evictions are silent.
		c.installLine(line, st, dirty, p.Ver)
		c.obs.PushInstalled(c.engine.Now(), line)
		c.bufferWriteback(line, p.Ver)
		c.sendReq(ReqMsg{Type: WB, Addr: line, From: c.name, Ver: p.Ver}, interconnect.DataMsgBytes)
		return
	}
	c.installLine(line, st, dirty, p.Ver)
	c.obs.PushInstalled(c.engine.Now(), line)
}

// installLine allocates a line, handling victim writeback.
func (c *Ctrl) installLine(line memsys.Addr, st State, dirty bool, ver uint64) {
	v, evicted := c.l2.Insert(line, st, dirty)
	c.lines.at(line).ver = ver
	c.obsState(line, I, st)
	if !evicted {
		return
	}
	vout := Transition(State(v.State), EvEvict)
	if !vout.OK {
		panic(fmt.Sprintf("coherence %s: evicting %#x from illegal state %s", c.name, uint64(v.Addr), StateName(State(v.State))))
	}
	c.obsState(v.Addr, State(v.State), vout.Next)
	if c.l1 != nil {
		c.l1.Invalidate(v.Addr)
	}
	vls := c.lines.at(v.Addr)
	vv := vls.ver
	vls.ver = 0
	if v.Dirty {
		c.bufferWriteback(v.Addr, vv)
		c.wbSent.Inc()
		c.sendReq(ReqMsg{Type: WB, Addr: v.Addr, From: c.name, Ver: vv}, interconnect.DataMsgBytes)
	}
}

// writebackDone clears the writeback buffer entry once memory has
// committed it. The clear is version-matched: if a newer writeback for
// the same line is already in flight (re-fetch and re-evict, or a
// second bypassed store), the commit notice of the older one must not
// strip the line's probe protection.
func (c *Ctrl) writebackDone(line memsys.Addr, ver uint64) {
	if ls := c.lines.at(line); ls.flags&lsWB != 0 && ls.wbVer == ver {
		ls.flags = 0
		ls.wbVer = 0
		c.wbCount--
	}
}

// bufferWriteback records a fresh in-flight writeback. Overwriting an
// older entry (re-fetch and re-evict) also clears any staleness: the
// new data is current again.
func (c *Ctrl) bufferWriteback(line memsys.Addr, ver uint64) {
	ls := c.lines.at(line)
	if ls.flags&lsWB == 0 {
		c.wbCount++
	}
	ls.flags = lsWB
	ls.wbVer = ver
}

// receiveProbe answers the memory controller's probe after the array
// lookup delay, plus any injected controller stall.
func (c *Ctrl) receiveProbe(p ProbeMsg) {
	c.probesRecv.Inc()
	pk := c.mem.pkt(pkAnswerProbe)
	pk.c, pk.probe = c, p
	c.engine.ScheduleArg(c.cfg.L2HitLat+c.stallTicks(), runPkt, pk)
}

func (c *Ctrl) answerProbe(p ProbeMsg) {
	line := p.Addr
	ack := AckMsg{Addr: line, From: c.name}

	if ls := c.lines.at(line); ls.flags&lsWB != 0 && ls.flags&lsWBStale == 0 {
		ver := ls.wbVer
		st, _, hit := c.l2.Probe(line)
		owned := hit && (st == MM || st == M || st == O)
		if !owned || ls.ver < ver {
			// Dirty eviction still in flight: we remain the data source.
			// An invalidating probe hands that role to the requester, so
			// the entry goes stale: it must not supply anyone else (the
			// new owner has newer data) nor satisfy local loads.
			if p.Kind == PrbInv {
				ls.flags |= lsWBStale
			}
			ack.HadData = true
			ack.Dirty = true
			ack.Ver = ver
			c.supplyToRequester(p, ver, true)
			c.sendAck(ack)
			return
		}
		// The line was re-acquired and re-dirtied while the older
		// writeback is still in flight. The live copy is newer, so
		// answer from the cache below; the in-flight writeback's
		// version-matched completion clears the buffer entry.
	}

	st, dirty, ok := c.l2.Probe(line)
	if !ok {
		c.sendAck(ack)
		return
	}
	// The probe reaction — what data leaves, what the ack reports and
	// which state the copy drops to — is one row of the shared protocol
	// table (table.go), the same relation the model checker enumerates.
	out := Transition(st, ProbeEvent(p.Kind))
	ack.Present = out.Present
	if out.Data != NoData {
		ack.HadData = true
		ack.Dirty = DataDirty(out.Data, dirty)
		ack.Ver = c.lines.at(line).ver
	}
	switch {
	case out.Next == st:
		// No state change (O/S survive PrbShare, everything survives
		// PrbSnoop).
	case out.Next == I:
		if c.hooks != nil && c.hooks.SkipInvalidate != nil && c.hooks.SkipInvalidate() {
			// Injected protocol mutation: acknowledge the probe but keep
			// the copy. The requester will install exclusive while this
			// cache still holds the line — exactly the silent bug class
			// the stress harness's invariant and oracle checks must
			// catch.
			break
		}
		if c.l1 != nil {
			c.l1.Invalidate(line)
		}
		c.l2.Invalidate(line)
		c.lines.at(line).ver = 0
		c.obsState(line, st, I)
	default:
		c.l2.SetState(line, out.Next)
		c.obsState(line, st, out.Next)
	}
	if ack.HadData {
		// 3-hop transfer: the owner sends the line straight to the
		// requester; the memory controller only gets a control ack.
		c.supplyToRequester(p, ack.Ver, ack.Dirty)
	}
	c.sendAck(ack)
}

// supplyToRequester performs the owner-to-requester data transfer with
// the grant implied by the probe kind.
func (c *Ctrl) supplyToRequester(p ProbeMsg, ver uint64, dirty bool) {
	var grant State
	var owned bool
	switch p.Kind {
	case PrbShare:
		// Previous owner keeps writeback responsibility in O.
		grant = GrantState(GETS, true, false)
	case PrbInv:
		grant = GrantState(GETX, true, false)
		owned = dirty // dirty-data responsibility transfers
	case PrbSnoop:
		grant = GrantState(RemoteLoad, true, false) // uncacheable: nothing installs
	}
	d := DataMsg{Addr: p.Addr, Ver: ver, Grant: grant, Owned: owned}
	requester := p.Requester
	if c.obs != nil {
		c.obs.Msg(c.engine.Now(), c.obsID, obs.MsgData, p.Addr, c.obs.Component(requester))
	}
	pk := c.mem.pkt(pkRecvData)
	pk.c, pk.data = c.mem.peers[requester], d
	c.xbar.SendArg(c.name, requester, interconnect.DataMsgBytes, runPkt, pk)
}

func (c *Ctrl) sendAck(ack AckMsg) {
	c.obs.Msg(c.engine.Now(), c.obsID, obs.MsgAck, ack.Addr, c.obsMem)
	pk := c.mem.pkt(pkRecvAck)
	pk.ack = ack
	c.xbar.SendArg(c.name, c.mem.Name(), interconnect.CtrlMsgBytes, runPkt, pk)
}

// receiveData completes an outstanding miss (or remote load).
func (c *Ctrl) receiveData(d DataMsg) {
	grant := d.Grant
	line := d.Addr
	if grant == I {
		// Uncacheable remote-load data: complete waiters, no install.
		waiters := c.remotePending[line]
		delete(c.remotePending, line)
		for _, w := range waiters {
			w.Ver = d.Ver
			w.Complete(c.engine.Now())
		}
		c.unblock(line)
		return
	}
	e, ok := c.mshr.Lookup(line)
	if !ok {
		panic(fmt.Sprintf("coherence %s: data for line %#x with no MSHR", c.name, uint64(line)))
	}
	superseded := e.Superseded
	waiters := c.mshr.Free(line)
	bypassed := false
	if !superseded {
		if c.cfg.BypassDirtyVictim {
			if v, wouldEvict := c.l2.PeekVictim(line); wouldEvict && v.Dirty {
				bypassed = true
				c.bypasses.Inc()
			}
		}
		if !bypassed {
			// Fill legality against the resident state: I on a plain
			// miss, S or O on the upgrade path (the stale copy survives
			// until the grant lands).
			prev, _, _ := c.l2.Probe(line)
			fe, feOK := FillEvent(grant)
			if out := Transition(prev, fe); !feOK || !out.OK {
				panic(fmt.Sprintf("coherence %s: fill %s illegal from %s", c.name, StateName(grant), StateName(prev)))
			}
			c.installLine(line, grant, d.Owned, d.Ver)
		}
	}
	c.unblock(line)
	// Complete waiters straight from the fill (no second array lookup —
	// MSHR-merged requests are one L2 access, matching Ruby's
	// accounting). Stores that did not get write permission retry as
	// upgrades; stores on a bypassed fill write through to memory.
	fillVer := d.Ver
	for _, w := range waiters {
		st, _, ok := c.l2.Probe(line)
		switch {
		case w.Type == memsys.Load || w.Type == memsys.IFetch:
			if ok {
				w.Ver = c.lines.at(line).ver
				c.fillL1(line)
			} else {
				w.Ver = fillVer
			}
			c.engine.ScheduleArg(0, completeReq, w)
		case ok && Transition(st, EvStoreHit).OK:
			if out := Transition(st, EvStoreHit); out.Next != st {
				c.l2.SetState(line, out.Next)
				c.obsState(line, st, out.Next)
			}
			c.l2.SetDirty(line, true)
			c.lines.at(line).ver = w.Ver
			if c.l1 != nil && c.l1.Contains(line) {
				c.l1.SetDirty(line, true)
			}
			c.engine.ScheduleArg(0, completeReq, w)
		case bypassed && grant == MM:
			// Exclusive permission held but no copy installed: the
			// store writes through to memory (nobody else caches the
			// line — the GETX invalidated all copies). Until memory
			// commits, this controller is the data's only holder, so the
			// line must sit in the writeback buffer: a GETS that beats
			// the in-flight WB to the ordering point probes us, and
			// without the entry it would read stale DRAM.
			fillVer = w.Ver
			c.bufferWriteback(line, w.Ver)
			c.sendReq(ReqMsg{Type: WB, Addr: line, From: c.name, Ver: w.Ver}, interconnect.DataMsgBytes)
			c.engine.ScheduleArg(0, completeReq, w)
		default:
			// Vanished line or insufficient grant: replay.
			pk := c.mem.pkt(pkProcessQuiet)
			pk.c, pk.req = c, w
			c.engine.ScheduleArg(0, runPkt, pk)
		}
	}
	c.drainStalled()
}

func (c *Ctrl) unblock(line memsys.Addr) {
	c.obs.Msg(c.engine.Now(), c.obsID, obs.MsgUnblock, line, c.obsMem)
	pk := c.mem.pkt(pkRecvUnblock)
	pk.line = line
	c.xbar.SendArg(c.name, c.mem.Name(), interconnect.CtrlMsgBytes, runPkt, pk)
}

// drainStalled releases stalled requests only while they can make
// progress: the line is now resident, has an in-flight fill to merge
// onto, or a free MSHR exists. Dumping the whole queue on every fill
// would reprocess (and re-stall) most of it — quadratic work and
// inflated statistics.
func (c *Ctrl) drainStalled() {
	for len(c.stalled) > 0 {
		req := c.stalled[0]
		line := memsys.LineAlign(req.Addr)
		_, pending := c.mshr.Lookup(line)
		if !pending && !c.l2.Contains(line) && c.mshr.Full() {
			return
		}
		c.stalled = c.stalled[1:]
		pk := c.mem.pkt(pkProcessQuiet)
		pk.c, pk.req = c, req
		c.engine.ScheduleArg(0, runPkt, pk)
	}
}
