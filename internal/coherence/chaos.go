package coherence

import (
	"fmt"

	"dstore/internal/interconnect"
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// ChaosHooks are the controller-side fault-injection points. A nil
// hooks pointer (the default) leaves every code path byte-identical to
// the fault-free simulator; each individual hook is optional too. Hooks
// must be deterministic functions of a seeded PRNG so runs reproduce
// exactly — the chaos package provides such implementations.
type ChaosHooks struct {
	// StallTicks returns extra ticks of controller occupancy injected
	// ahead of processing an incoming access or probe (n-cycle
	// controller stalls). Nil or returning 0 injects nothing.
	StallTicks func() sim.Tick
	// NackPush makes the receiving slice refuse a resilient push; the
	// sender backs off exponentially and retries.
	NackPush func() bool
	// SkipInvalidate makes a peer ignore the state change of an
	// invalidating probe while still acknowledging it — a deliberately
	// injected protocol bug (a mutation) used to prove the stress
	// harness's invariant and oracle checks detect real violations
	// rather than just decorating the run.
	SkipInvalidate func() bool
}

// ResilienceConfig enables the ack/NACK + bounded-retry protocol on the
// direct-store push path. The baseline push is fire-and-forget, which
// is sound on a perfect fabric; under injected message loss the sender
// must detect the lost PUTX and resend it.
type ResilienceConfig struct {
	Enabled bool
	// PushTimeout is the base acknowledgement deadline in ticks; it
	// doubles with each retry (exponential backoff). Zero selects 4096,
	// comfortably past the worst fault-free push round trip.
	PushTimeout sim.Tick
	// MaxRetries bounds resends of one push before the run is failed
	// with a transaction dump. Zero selects 8.
	MaxRetries int
}

func (r ResilienceConfig) withDefaults() ResilienceConfig {
	if r.PushTimeout == 0 {
		r.PushTimeout = 4096
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 8
	}
	return r
}

// pendingPush is the sender-side state of one unacknowledged resilient
// push. gen invalidates stale timers: every retry decision bumps it, so
// a timeout armed for an earlier attempt fires as a no-op.
type pendingPush struct {
	msg     PutxMsg
	req     *memsys.Request
	target  *Ctrl
	attempt int
	gen     uint64
	done    bool
}

// AttachChaos installs fault-injection hooks on the controller.
func (c *Ctrl) AttachChaos(h *ChaosHooks) { c.hooks = h }

// EnableResilience switches the controller's push path to the
// ack/NACK + bounded-retry protocol.
func (c *Ctrl) EnableResilience(r ResilienceConfig) {
	r.Enabled = true
	c.res = r.withDefaults()
	c.pushPending = make(map[uint64]*pendingPush) //dstore:allow-alloc chaos setup, once per run
	c.appliedPush = make(map[uint64]bool)         //dstore:allow-alloc chaos setup, once per run
	c.lastPushVer = make(map[memsys.Addr]uint64)  //dstore:allow-alloc chaos setup, once per run
}

// SetFailureHandler routes fatal protocol failures (push retry
// exhaustion) to f instead of panicking. The harness uses this to fail
// the run with a diagnosis while keeping the process alive.
func (c *Ctrl) SetFailureHandler(f func(error)) { c.onFatal = f }

func (c *Ctrl) fail(err error) {
	if c.onFatal != nil {
		c.onFatal(err)
		return
	}
	panic(err)
}

// stallTicks draws an injected controller stall, or 0 without hooks.
func (c *Ctrl) stallTicks() sim.Tick {
	if c.hooks != nil && c.hooks.StallTicks != nil {
		return c.hooks.StallTicks()
	}
	return 0
}

// sendResilientPush allocates a sequence number for the push and sends
// the first attempt. The requester completes only when the slice's
// acknowledgement arrives.
func (c *Ctrl) sendResilientPush(p PutxMsg, req *memsys.Request, target *Ctrl) {
	c.pushSeq++
	p.Seq = c.pushSeq
	pp := &pendingPush{msg: p, req: req, target: target}
	c.pushPending[p.Seq] = pp
	c.sendPushAttempt(pp)
}

// sendPushAttempt transmits the push (over the dedicated link, or the
// crossbar under the §III-G ablation) and arms the ack timeout for the
// current attempt.
func (c *Ctrl) sendPushAttempt(pp *pendingPush) {
	p := pp.msg
	target := pp.target
	deliver := func(sim.Tick) { target.ReceivePutx(p, nil) }
	if c.cfg.DirectOverXbar {
		if c.cfg.DirectGetx {
			c.xbar.Send(c.name, target.name, interconnect.CtrlMsgBytes, nil)
		}
		c.xbar.Send(c.name, target.name, interconnect.DataMsgBytes, deliver)
	} else {
		if c.cfg.DirectGetx {
			c.directLink.Send(interconnect.CtrlMsgBytes, nil)
		}
		c.directLink.Send(interconnect.DataMsgBytes, deliver)
	}
	c.armPushTimer(pp, c.res.PushTimeout<<uint(pp.attempt))
}

// armPushTimer schedules a retry check after delay. The closure is
// generation-stamped: any retry decision made in the meantime (a NACK
// backoff, an earlier timeout) invalidates it.
func (c *Ctrl) armPushTimer(pp *pendingPush, delay sim.Tick) {
	gen := pp.gen
	c.engine.Schedule(delay, func() {
		if pp.done || pp.gen != gen {
			return
		}
		c.retryPush(pp)
	})
}

// retryPush resends an unacknowledged push, or fails the run with a
// transaction dump once the retry budget is exhausted.
func (c *Ctrl) retryPush(pp *pendingPush) {
	pp.gen++
	if pp.attempt >= c.res.MaxRetries {
		c.fail(fmt.Errorf(
			"coherence %s: direct-store push for line %#x (seq %d) unacknowledged after %d attempts\n%s",
			c.name, uint64(pp.msg.Addr), pp.msg.Seq, pp.attempt+1, c.mem.TransactionDump()))
		return
	}
	pp.attempt++
	c.pushRetries.Inc()
	c.sendPushAttempt(pp)
}

// receivePutxResilient is the receiver side of the resilient push:
// every delivery is acknowledged, injected faults NACK instead, and
// duplicates (from retries racing slow originals, or fault-injected
// duplication) are suppressed so a push applies at most once and a
// reordered stale push never regresses the line.
func (c *Ctrl) receivePutxResilient(p PutxMsg) {
	if c.hooks != nil && c.hooks.NackPush != nil && c.hooks.NackPush() {
		c.sendPushAck(p, true)
		return
	}
	// Sequence numbers are per-sender; this system has a single push
	// sender (the CPU controller), so a flat seq set suffices. The
	// version comparison handles reordering: global versions are
	// monotonic, so a same-line push with a lower version is stale.
	if c.appliedPush[p.Seq] || p.Ver < c.lastPushVer[p.Addr] {
		c.sendPushAck(p, false) // re-ack so the sender stops retrying
		return
	}
	c.appliedPush[p.Seq] = true
	c.lastPushVer[p.Addr] = p.Ver
	c.applyPutx(p)
	c.sendPushAck(p, false)
}

// sendPushAck returns an acknowledgement (or NACK) to the push sender
// over the shared crossbar as a control message.
func (c *Ctrl) sendPushAck(p PutxMsg, nack bool) {
	sender := c.mem.peers[p.From]
	if sender == nil {
		panic(fmt.Sprintf("coherence %s: push ack for unknown sender %q", c.name, p.From))
	}
	ack := PushAckMsg{Addr: p.Addr, Seq: p.Seq, Nack: nack}
	c.xbar.Send(c.name, p.From, interconnect.CtrlMsgBytes, func(sim.Tick) {
		sender.receivePushAck(ack)
	})
}

// receivePushAck resolves one outstanding push: an ack completes the
// original store request; a NACK backs off exponentially and retries.
func (c *Ctrl) receivePushAck(a PushAckMsg) {
	pp := c.pushPending[a.Seq]
	if pp == nil || pp.done {
		return // duplicate ack from a retry whose original also landed
	}
	if a.Nack {
		c.pushNacks.Inc()
		pp.gen++
		c.armPushTimer(pp, c.res.PushTimeout<<uint(pp.attempt))
		return
	}
	pp.done = true
	delete(c.pushPending, a.Seq)
	c.complete(pp.req, c.cfg.L2HitLat)
}
