package coherence

import (
	"dstore/internal/memsys"
	"dstore/internal/stats"
)

// RegionDirectory is an HSC-style probe filter (Power et al., MICRO
// 2013 — the paper's reference [2]): the memory controller tracks
// coarse-grained regions and skips the broadcast probes for requests to
// regions private to the requester. GPU workloads touch mostly
// GPU-private data, so the filter removes most of Hammer's probe
// traffic — the strongest conventional baseline the paper compares its
// simplicity argument against.
//
// States per region: unowned (never touched), private to one agent, or
// shared (two or more agents have touched it — broadcast from then on).
// Uncacheable remote loads always probe: the pushed copy in the GPU L2
// is the authority regardless of region state.
type RegionDirectory struct {
	shift uint
	// groupOf maps agent names to sharing domains: the four GPU L2
	// slices are one domain (lines interleave across them, so a region
	// is touched by all four). nil = identity.
	groupOf func(string) string
	// owner maps region number → owning agent; sharedRegion marks
	// regions demoted to broadcast.
	owner  map[uint64]string
	shared map[uint64]bool

	counters   *stats.Set
	claims     *stats.Counter
	filtered   *stats.Counter
	downgrades *stats.Counter
}

// NewRegionDirectory builds a directory tracking regions of
// 2^shift bytes (12 = 4KB pages, HSC's granularity). groupOf maps
// agent names into sharing domains (e.g. all GPU L2 slices → "gpu");
// nil means every agent is its own domain.
func NewRegionDirectory(shift uint, groupOf func(string) string) *RegionDirectory {
	if groupOf == nil {
		groupOf = func(n string) string { return n }
	}
	r := &RegionDirectory{
		shift:    shift,
		groupOf:  groupOf,
		owner:    make(map[uint64]string),
		shared:   make(map[uint64]bool),
		counters: stats.NewSet(),
	}
	r.claims = r.counters.Counter("regions_claimed")
	r.filtered = r.counters.Counter("probes_filtered")
	r.downgrades = r.counters.Counter("region_downgrades")
	return r
}

// Counters exposes claim/filter/downgrade counts.
func (r *RegionDirectory) Counters() *stats.Set { return r.counters }

func (r *RegionDirectory) region(a memsys.Addr) uint64 { return uint64(a) >> r.shift }

// Filter decides whether the probes for a request can be skipped.
// Ordinary requests to a region owned by the requester (or never
// touched) skip; anything else broadcasts, demoting the region to
// shared. RemoteLoad never filters: the GPU L2 may hold a pushed line
// newer than memory.
func (r *RegionDirectory) Filter(addr memsys.Addr, requester string, ty ReqType) (skipProbes bool) {
	if ty == RemoteLoad {
		return false
	}
	requester = r.groupOf(requester)
	reg := r.region(addr)
	if r.shared[reg] {
		return false
	}
	owner, owned := r.owner[reg]
	switch {
	case !owned:
		r.owner[reg] = requester
		r.claims.Inc()
		r.filtered.Inc()
		return true
	case owner == requester:
		r.filtered.Inc()
		return true
	default:
		// Second agent touches the region: broadcast this and every
		// later request.
		r.shared[reg] = true
		r.downgrades.Inc()
		return false
	}
}

// Owner returns the owning agent of the region containing a, if the
// region is private ("" and false when unowned or shared).
func (r *RegionDirectory) Owner(a memsys.Addr) (string, bool) {
	reg := r.region(a)
	if r.shared[reg] {
		return "", false
	}
	o, ok := r.owner[reg]
	return o, ok
}

// SharedRegions returns how many regions have been demoted to
// broadcast.
func (r *RegionDirectory) SharedRegions() int { return len(r.shared) }
