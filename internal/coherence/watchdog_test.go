package coherence

import (
	"strings"
	"testing"

	"dstore/internal/memsys"
)

// wedge plants a transaction in the memory controller's busy set that
// no protocol event will ever finish — the shape of a lost unblock or
// dropped ack — and arms the scan loop.
func wedge(r *rig, line memsys.Addr, ty ReqType, from string) {
	*r.mem.busy.at(line) = &txn{
		req:        ReqMsg{Type: ty, Addr: line, From: from},
		started:    r.e.Now(),
		acksWanted: 1,
	}
	r.mem.busyCount++
	r.mem.armWatchdog()
}

// TestWatchdogQuietOnHealthyTraffic checks the armed watchdog never
// fires on a normally completing workload and never keeps the event
// queue alive once the system drains.
func TestWatchdogQuietOnHealthyTraffic(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	var stuck error
	r.mem.EnableWatchdog(500, 50_000, func(err error) { stuck = err })
	for i := 0; i < 8; i++ {
		r.do(r.cpu, memsys.Store, line0+memsys.Addr(i)*memsys.LineSize, uint64(i+1))
		r.do(r.gpu, memsys.Load, line0+memsys.Addr(i)*memsys.LineSize, 0)
	}
	if stuck != nil {
		t.Fatalf("watchdog tripped on healthy traffic: %v", stuck)
	}
	if !r.mem.Idle() {
		t.Fatal("transactions still in flight after quiesce")
	}
}

// TestWatchdogTripsOnStuckTransaction wedges a transaction — the shape
// of a lost unblock — and checks the watchdog converts the hang into a
// failure carrying the full transaction dump.
func TestWatchdogTripsOnStuckTransaction(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	var stuck error
	r.mem.EnableWatchdog(500, 10_000, func(err error) { stuck = err })
	wedge(r, line0, GETS, "cpu")
	r.e.Run()
	if stuck == nil {
		t.Fatal("watchdog never tripped on a wedged transaction")
	}
	msg := stuck.Error()
	if !strings.Contains(msg, "stuck for") || !strings.Contains(msg, "transaction dump") {
		t.Fatalf("trip diagnostic missing transaction dump: %v", msg)
	}
	if !strings.Contains(msg, "GETS") || !strings.Contains(msg, "cpu") {
		t.Fatalf("dump does not identify the wedged request: %v", msg)
	}
}

// TestWatchdogTripsOnce checks a tripped watchdog reports a single
// failure and stops rescheduling scans, so the run terminates.
func TestWatchdogTripsOnce(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	trips := 0
	r.mem.EnableWatchdog(500, 5_000, func(error) { trips++ })
	wedge(r, line0, GETS, "cpu")
	wedge(r, line0+64*memsys.LineSize, GETX, "gpu0")
	r.e.Run()
	if trips != 1 {
		t.Fatalf("watchdog tripped %d times, want exactly 1", trips)
	}
}

// TestTransactionDumpDeterministicOrder checks the dump renders
// in-flight transactions in address order with a count, regardless of
// map iteration order.
func TestTransactionDumpDeterministicOrder(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	wedge(r, line0+64*memsys.LineSize, GETS, "gpu0")
	wedge(r, line0, GETX, "cpu")
	dump := r.mem.TransactionDump()
	if !strings.Contains(dump, "2 in flight") {
		t.Fatalf("dump does not count transactions: %s", dump)
	}
	first := strings.Index(dump, "GETX")
	second := strings.Index(dump, "GETS")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("dump not in address order (GETX@line0 must precede GETS@line0+64):\n%s", dump)
	}
}
