// Package store is the persistent layer beneath dstore-serve's
// in-memory caches: a content-addressed, disk-backed store keyed by
// the same SHA-256 hex IDs the result and snapshot LRUs already use,
// so warm prefixes and cached results survive process restarts
// (DESIGN.md §12).
//
// Crash safety contract: every Put writes a checksummed entry to a
// temp file, fsyncs it, renames it into place, and fsyncs the
// directory — a crash at any point leaves either the old state or the
// new state, never a torn entry. Open verifies every entry's content
// hash (and any namespace-specific deep check, e.g. the DSSNAP
// snapshot fingerprint) and quarantines entries that fail instead of
// refusing to boot: a corrupted cache entry costs a re-simulation,
// not an outage.
//
// The store is size-capped: when the sum of entry bodies exceeds
// MaxBytes the least recently used entries are deleted. Recency is
// tracked in memory; across a restart it is reconstructed from file
// modification times, so a freshly opened store evicts oldest-written
// first until its own access history accumulates.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// entryMagic heads every entry file, versioned so a future layout
// change quarantines old files instead of misreading them.
const entryMagic = "DSCAS1"

// headerLen is magic + u64 body length + 32-byte SHA-256 of the body.
const headerLen = len(entryMagic) + 8 + sha256.Size

// DefaultMaxBytes caps the store when Options.MaxBytes is zero.
const DefaultMaxBytes = 256 << 20

// VerifyFunc deep-checks an entry body beyond the content hash (e.g.
// the DSSNAP container header for snapshot entries). A non-nil error
// quarantines the entry at Open.
type VerifyFunc func(body []byte) error

// Options configures Open.
type Options struct {
	// Dir is the store root. Created if absent.
	Dir string
	// MaxBytes caps the sum of stored body bytes; least recently used
	// entries are evicted past it. Zero means DefaultMaxBytes,
	// negative means unlimited.
	MaxBytes int64
	// Verify maps a namespace to a deep check run against every entry
	// of that namespace at Open (and on every Get). Namespaces without
	// an entry are verified by content hash only.
	Verify map[string]VerifyFunc
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Hits      uint64 // Gets answered from disk
	Misses    uint64 // Gets with no (valid) entry
	Writes    uint64 // entries written (skipped duplicate Puts excluded)
	Evictions uint64 // entries deleted by the size cap
	Corrupt   uint64 // entries quarantined (at Open or on a failed Get)
	Bytes     int64  // sum of stored body bytes
	Entries   int    // live entries
}

// Store is a disk-backed content-addressed key→blob map. Safe for
// concurrent use.
type Store struct {
	dir    string
	max    int64
	verify map[string]VerifyFunc

	mu      sync.Mutex
	closed  bool
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, writes, evictions, corrupt uint64
	bytes                                    int64
}

type diskEntry struct {
	key  string // "ns/hexid"
	size int64  // body bytes
}

// tmpDir and quarantineDir are reserved top-level names; namespaces
// may not collide with them.
const (
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
)

// Open loads (or creates) the store rooted at opt.Dir: leftover temp
// files from a crashed writer are removed, every entry is read back
// and verified, and entries that fail verification are renamed into
// the quarantine directory and counted in Stats.Corrupt.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	max := opt.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	s := &Store{
		dir:     opt.Dir,
		max:     max,
		verify:  opt.Verify,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
	for _, d := range []string{opt.Dir, filepath.Join(opt.Dir, tmpDir), filepath.Join(opt.Dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.sweepTemp(); err != nil {
		return nil, err
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// sweepTemp deletes temp files abandoned by a crashed writer.
func (s *Store) sweepTemp() error {
	names, err := os.ReadDir(filepath.Join(s.dir, tmpDir))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range names {
		_ = os.Remove(filepath.Join(s.dir, tmpDir, de.Name()))
	}
	return nil
}

// scan indexes and verifies every entry on disk. Entries are ordered
// oldest-modified first so the reconstructed LRU list evicts
// oldest-written entries until real access history accumulates.
func (s *Store) scan() error {
	type found struct {
		key  string
		path string
		mod  time.Time
		size int64
	}
	var all []found
	nss, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, nsDir := range nss {
		ns := nsDir.Name()
		if !nsDir.IsDir() || ns == tmpDir || ns == quarantineDir {
			continue
		}
		shards, err := os.ReadDir(filepath.Join(s.dir, ns))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, shard := range shards {
			if !shard.IsDir() {
				continue
			}
			files, err := os.ReadDir(filepath.Join(s.dir, ns, shard.Name()))
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			for _, f := range files {
				if f.IsDir() {
					continue
				}
				if !validKey(f.Name()) || f.Name()[:2] != shard.Name() {
					// Not a store entry (or misfiled): set it aside rather
					// than indexing a file path() can't reconstruct.
					s.quarantine(filepath.Join(s.dir, ns, shard.Name(), f.Name()), ns+"/"+f.Name())
					continue
				}
				info, err := f.Info()
				if err != nil {
					continue // deleted underneath us
				}
				all = append(all, found{
					key:  ns + "/" + f.Name(),
					path: filepath.Join(s.dir, ns, shard.Name(), f.Name()),
					mod:  info.ModTime(),
					size: info.Size(),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mod.Equal(all[j].mod) {
			return all[i].mod.Before(all[j].mod)
		}
		return all[i].key < all[j].key
	})
	for _, f := range all {
		body, err := s.readEntry(f.path, f.key)
		if err != nil {
			s.quarantine(f.path, f.key)
			continue
		}
		el := s.ll.PushFront(&diskEntry{key: f.key, size: int64(len(body))})
		s.entries[f.key] = el
		s.bytes += int64(len(body))
	}
	return nil
}

// readEntry reads and fully verifies one entry file: magic, declared
// length, content hash, and the namespace deep check.
func (s *Store) readEntry(path, key string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerLen || string(raw[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("store: %s: bad entry header", key)
	}
	n := binary.LittleEndian.Uint64(raw[len(entryMagic):])
	body := raw[headerLen:]
	if uint64(len(body)) != n {
		return nil, fmt.Errorf("store: %s: truncated entry (%d of %d body bytes)", key, len(body), n)
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(entryMagic)+8:headerLen])
	if sha256.Sum256(body) != want {
		return nil, fmt.Errorf("store: %s: content hash mismatch", key)
	}
	if fn := s.verify[namespaceOf(key)]; fn != nil {
		if err := fn(body); err != nil {
			return nil, fmt.Errorf("store: %s: %w", key, err)
		}
	}
	return body, nil
}

func namespaceOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return ""
}

// quarantine moves a failed entry aside (never deletes: the bytes may
// matter for a post-mortem) and counts it. Concurrent readers of the
// same torn entry race here; rename is atomic, so exactly one of them
// moves the file — only that one counts, the losers' renames fail on
// the now-missing source and are deliberately silent.
func (s *Store) quarantine(path, key string) {
	dst := filepath.Join(s.dir, quarantineDir, strings.ReplaceAll(key, "/", "_"))
	for i := 0; ; i++ {
		name := dst
		if i > 0 {
			name = fmt.Sprintf("%s.%d", dst, i)
		}
		if _, err := os.Lstat(name); os.IsNotExist(err) {
			dst = name
			break
		}
	}
	if os.Rename(path, dst) != nil {
		return // a racing reader already moved (or removed) it
	}
	s.mu.Lock()
	s.corrupt++
	s.mu.Unlock()
}

// validKey requires lowercase-hex content addresses of plausible hash
// length: they double as file names, so nothing else is accepted.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func validNamespace(ns string) bool {
	if ns == "" || ns == tmpDir || ns == quarantineDir {
		return false
	}
	for i := 0; i < len(ns); i++ {
		c := ns[i]
		if (c < 'a' || c > 'z') && c != '-' {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	ns := namespaceOf(key)
	id := key[len(ns)+1:]
	return filepath.Join(s.dir, ns, id[:2], id)
}

// Get returns the body stored under (ns, key). A stored entry that no
// longer verifies is quarantined and reported as a miss.
func (s *Store) Get(ns, key string) ([]byte, bool) {
	if !validNamespace(ns) || !validKey(key) {
		return nil, false
	}
	full := ns + "/" + key
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	el, ok := s.entries[full]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()

	body, err := s.readEntry(s.path(full), full)
	if err != nil {
		// On-disk rot after Open: drop the index entry and set it aside.
		s.mu.Lock()
		if el2, still := s.entries[full]; still {
			s.bytes -= el2.Value.(*diskEntry).size
			s.ll.Remove(el2)
			delete(s.entries, full)
		}
		s.misses++
		s.mu.Unlock()
		s.quarantine(s.path(full), full)
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return body, true
}

// Put durably stores body under (ns, key): temp file, fsync, rename,
// directory fsync. A key already present is left untouched — entries
// are content-addressed, so an overwrite could only write the same
// bytes again.
func (s *Store) Put(ns, key string, body []byte) error {
	if !validNamespace(ns) {
		return fmt.Errorf("store: invalid namespace %q", ns)
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	full := ns + "/" + key
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if _, ok := s.entries[full]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if err := s.writeFile(full, body); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[full]; !ok {
		el := s.ll.PushFront(&diskEntry{key: full, size: int64(len(body))})
		s.entries[full] = el
		s.bytes += int64(len(body))
		s.writes++
	}
	s.evictLocked()
	return nil
}

// writeFile performs the crash-safe entry write.
func (s *Store) writeFile(full string, body []byte) error {
	final := s.path(full)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	hdr := make([]byte, headerLen)
	copy(hdr, entryMagic)
	binary.LittleEndian.PutUint64(hdr[len(entryMagic):], uint64(len(body)))
	sum := sha256.Sum256(body)
	copy(hdr[len(entryMagic)+8:], sum[:])
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(body)
		if err == nil {
			err = tmp.Sync()
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(filepath.Dir(final))
}

// evictLocked deletes least recently used entries until the store is
// within its byte cap. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.max < 0 {
		return
	}
	for s.bytes > s.max && s.ll.Len() > 0 {
		oldest := s.ll.Back()
		de := oldest.Value.(*diskEntry)
		s.ll.Remove(oldest)
		delete(s.entries, de.key)
		s.bytes -= de.size
		s.evictions++
		_ = os.Remove(s.path(de.key))
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Writes: s.writes,
		Evictions: s.evictions, Corrupt: s.corrupt,
		Bytes: s.bytes, Entries: s.ll.Len(),
	}
}

// Sync fsyncs the store root. Entry writes are individually durable
// (Put fsyncs file and parent directory), so this is a final barrier
// for shutdown paths.
func (s *Store) Sync() error {
	return syncDir(s.dir)
}

// Close syncs and marks the store closed; subsequent Gets miss and
// Puts fail. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.Sync()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
