package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j", "sweep.wal")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf(`{"seq":%d,"body":"record %d"}`, i, i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 50 {
		t.Fatalf("Records() = %d, want 50", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
	// The reopened log keeps appending after the replayed tail.
	if err := w2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if w2.Records() != 51 {
		t.Fatalf("Records() after reopen append = %d, want 51", w2.Records())
	}
}

// TestWALTornTailTruncated simulates an appender crash at every
// possible byte boundary of the final record: replay must return all
// intact records, drop the torn one, and leave the log appendable.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, _, err := OpenWAL(ref)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta-record"), []byte("gamma")}
	var offsets []int64 // file size after each append
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.Bytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point strictly inside the last record's frame.
	for cut := offsets[1] + 1; cut < offsets[2]; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, replayed, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(replayed) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(replayed))
		}
		// Appending after truncation must produce a clean 3-record log.
		if err := w2.Append([]byte("delta")); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		_, again, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != 3 || string(again[2]) != "delta" {
			t.Fatalf("cut at %d: post-truncation append lost: %q", cut, again)
		}
	}
}

// TestWALCorruptTailChecksum flips a byte inside the last record's
// body: the record must be dropped (checksum), earlier records kept.
func TestWALCorruptTailChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	mark := w.Bytes()
	if err := w.Append([]byte("flip-me")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[mark+walFrameLen+2] ^= 0x40 // inside the second record's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 1 || string(recs[0]) != "keep-me" {
		t.Fatalf("replay after bit flip: %q, want just keep-me", recs)
	}
}

func TestWALBadMagicIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("bad magic opened without error")
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	w.Close()
	_, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("replayed %d records, want 200", len(recs))
	}
}
