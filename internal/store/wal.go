// Write-ahead log: the append-oriented sibling of the store's
// fsync-rename entries, built for the fleet coordinator's sweep
// journal (DESIGN.md §13). Where a store entry is written once and
// renamed into place, a WAL grows record by record — so its crash
// contract is framing, not renaming: every record is length-prefixed
// and CRC-checksummed, every append is fsynced before it is
// acknowledged, and Open truncates a torn tail (the half-written
// record of a crashed appender) back to the last intact record
// instead of refusing to read the file.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// walMagic heads every WAL file, versioned like entryMagic so a
// layout change quarantines old journals instead of misreading them.
const walMagic = "DSWAL1\n"

// walFrameLen is the per-record frame: u32 body length + u32 CRC-32C
// of the body.
const walFrameLen = 8

// maxWALRecord bounds one record so a corrupt length prefix cannot
// drive a giant allocation.
const maxWALRecord = 64 << 20

// ErrWALCorrupt reports a WAL whose header (not merely its tail) is
// unreadable. Callers should set the file aside and start fresh — the
// bytes may matter for a post-mortem, like a quarantined entry.
var ErrWALCorrupt = errors.New("store: corrupt WAL header")

var walTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only checksummed record log. Safe for concurrent
// Append; Open replays existing records and positions for append.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	closed  bool
	records uint64
	bytes   int64
}

// OpenWAL opens (or creates) the log at path and returns every intact
// record already in it, in append order. A torn tail — a final record
// whose frame or checksum does not verify, as a crashed appender
// leaves behind — is truncated away; the records before it are
// unaffected. A file whose magic header does not verify returns
// ErrWALCorrupt.
func OpenWAL(path string) (*WAL, [][]byte, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	w := &WAL{f: f, path: path}
	recs, err := w.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, recs, nil
}

// replay validates the header (writing it into an empty file), reads
// every intact record, and truncates the file after the last one.
func (w *WAL) replay() ([][]byte, error) {
	raw, err := os.ReadFile(w.path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(raw) == 0 {
		if _, err := w.f.Write([]byte(walMagic)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := syncDir(filepath.Dir(w.path)); err != nil {
			return nil, err
		}
		w.bytes = int64(len(walMagic))
		return nil, nil
	}
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		return nil, fmt.Errorf("%w: %s", ErrWALCorrupt, w.path)
	}
	var recs [][]byte
	off := len(walMagic)
	good := off
	for off < len(raw) {
		if len(raw)-off < walFrameLen {
			break // torn frame
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if n > maxWALRecord || len(raw)-off-walFrameLen < int(n) {
			break // torn or garbage length
		}
		body := raw[off+walFrameLen : off+walFrameLen+int(n)]
		if crc32.Checksum(body, walTable) != sum {
			break // torn body
		}
		rec := make([]byte, n)
		copy(rec, body)
		recs = append(recs, rec)
		off += walFrameLen + int(n)
		good = off
	}
	if good < len(raw) {
		if err := w.f.Truncate(int64(good)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(good), 0); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w.records = uint64(len(recs))
	w.bytes = int64(good)
	return recs, nil
}

// Append durably appends one record: frame + body written, then
// fsynced, before Append returns. Safe for concurrent use; records
// land in Append-call order under the internal lock.
func (w *WAL) Append(rec []byte) error {
	if len(rec) > maxWALRecord {
		return fmt.Errorf("store: WAL record of %d bytes exceeds the %d cap", len(rec), maxWALRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: WAL closed")
	}
	buf := make([]byte, walFrameLen+len(rec))
	binary.LittleEndian.PutUint32(buf, uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(rec, walTable))
	copy(buf[walFrameLen:], rec)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.records++
	w.bytes += int64(len(buf))
	return nil
}

// Records returns how many records the log holds (replayed + appended).
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Bytes returns the log's on-disk size.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
