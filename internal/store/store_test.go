package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	key := keyOf("a")
	body := []byte("hello world")
	if err := s.Put("result", key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("result", key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, body)
	}
	if _, ok := s.Get("result", keyOf("absent")); ok {
		t.Fatal("Get of absent key succeeded")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 || st.Bytes != int64(len(body)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	bodies := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := keyOf(fmt.Sprint(i))
		b := []byte(fmt.Sprintf("body-%d", i))
		bodies[k] = b
		if err := s.Put("result", k, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	if st := s2.Stats(); st.Entries != 20 {
		t.Fatalf("reopened with %d entries, want 20", st.Entries)
	}
	for k, want := range bodies {
		got, ok := s2.Get("result", k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %s: got %q, %v", k, got, ok)
		}
	}
}

func TestNamespacesAreDisjoint(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	key := keyOf("shared")
	if err := s.Put("result", key, []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("snap", key, []byte("s")); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Get("result", key)
	sn, _ := s.Get("snap", key)
	if string(r) != "r" || string(sn) != "s" {
		t.Fatalf("namespace collision: result=%q snap=%q", r, sn)
	}
}

func TestRejectsBadKeysAndNamespaces(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	for _, bad := range []struct{ ns, key string }{
		{"result", "short"},
		{"result", "../../../../etc/passwd0000000000000000000000000000000000000000"},
		{"result", "ABCDEF0123456789ABCDEF0123456789"}, // uppercase
		{"tmp", keyOf("x")},
		{"quarantine", keyOf("x")},
		{"", keyOf("x")},
		{"Res/ult", keyOf("x")},
	} {
		if err := s.Put(bad.ns, bad.key, []byte("x")); err == nil {
			t.Errorf("Put(%q, %q) accepted", bad.ns, bad.key)
		}
		if _, ok := s.Get(bad.ns, bad.key); ok {
			t.Errorf("Get(%q, %q) succeeded", bad.ns, bad.key)
		}
	}
}

// corruptEntryFile flips a byte inside the stored body of key.
func corruptEntryFile(t *testing.T, dir, ns, key string) {
	t.Helper()
	path := filepath.Join(dir, ns, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	good, bad := keyOf("good"), keyOf("bad")
	if err := s.Put("result", good, []byte("good-body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("result", bad, []byte("bad-body")); err != nil {
		t.Fatal(err)
	}
	// A truncated entry (crash mid-hardware-failure; rename made it
	// visible but the disk lied about the fsync).
	trunc := keyOf("trunc")
	if err := s.Put("result", trunc, []byte("truncated-body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptEntryFile(t, dir, "result", bad)
	tpath := filepath.Join(dir, "result", trunc[:2], trunc)
	raw, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tpath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	st := s2.Stats()
	if st.Corrupt != 2 {
		t.Fatalf("Corrupt = %d, want 2", st.Corrupt)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
	if _, ok := s2.Get("result", bad); ok {
		t.Fatal("corrupted entry still served")
	}
	if got, ok := s2.Get("result", good); !ok || string(got) != "good-body" {
		t.Fatalf("good entry lost: %q, %v", got, ok)
	}
	// The corrupt bytes were set aside, not deleted.
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d files, want 2", len(q))
	}
}

func TestGetQuarantinesRuntimeRot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	key := keyOf("rot")
	if err := s.Put("result", key, []byte("rot-body")); err != nil {
		t.Fatal(err)
	}
	corruptEntryFile(t, dir, "result", key)
	if _, ok := s.Get("result", key); ok {
		t.Fatal("rotted entry served")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt and 0 entries", st)
	}
	// The slot is reusable after quarantine.
	if err := s.Put("result", key, []byte("rot-body")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("result", key); !ok || string(got) != "rot-body" {
		t.Fatalf("rewritten entry: %q, %v", got, ok)
	}
}

func TestVerifierQuarantinesAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	good, bad := keyOf("v-good"), keyOf("v-bad")
	if err := s.Put("snap", good, []byte("SNAPgood")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("snap", bad, []byte("JUNKbad")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	verify := func(b []byte) error {
		if !bytes.HasPrefix(b, []byte("SNAP")) {
			return fmt.Errorf("bad snapshot prefix")
		}
		return nil
	}
	s2 := mustOpen(t, Options{Dir: dir, Verify: map[string]VerifyFunc{"snap": verify}})
	if st := s2.Stats(); st.Corrupt != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt / 1 entry", st)
	}
	if _, ok := s2.Get("snap", bad); ok {
		t.Fatal("verifier-rejected entry served")
	}
	if _, ok := s2.Get("snap", good); !ok {
		t.Fatal("verifier-passing entry lost")
	}
}

func TestSizeCapEvictsLRU(t *testing.T) {
	// Cap of 100 bytes with 10×20-byte bodies: only 5 fit.
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 100})
	body := bytes.Repeat([]byte("x"), 20)
	var keys []string
	for i := 0; i < 10; i++ {
		k := keyOf(fmt.Sprint(i))
		keys = append(keys, k)
		if err := s.Put("result", k, body); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 5 || st.Bytes != 100 || st.Evictions != 5 {
		t.Fatalf("stats = %+v, want 5 entries / 100 bytes / 5 evictions", st)
	}
	for i, k := range keys {
		_, ok := s.Get("result", k)
		if want := i >= 5; ok != want {
			t.Fatalf("key %d present = %v, want %v", i, ok, want)
		}
	}

	// Touching key 5 makes key 6 the eviction victim for the next Put.
	if _, ok := s.Get("result", keys[5]); !ok {
		t.Fatal("key 5 missing")
	}
	if err := s.Put("result", keyOf("fresh"), body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("result", keys[6]); ok {
		t.Fatal("key 6 survived eviction despite being LRU")
	}
	if _, ok := s.Get("result", keys[5]); !ok {
		t.Fatal("recently used key 5 was evicted")
	}
}

func TestCrashLeftoverTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put("result", keyOf("x"), []byte("x-body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that died between CreateTemp and rename.
	if err := os.WriteFile(filepath.Join(dir, tmpDir, "put-dead"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir})
	if st := s2.Stats(); st.Entries != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
	left, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d temp files survived reopen", len(left))
	}
}

func TestDuplicatePutIsNoop(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	key := keyOf("dup")
	if err := s.Put("result", key, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("result", key, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want a single write", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyOf(fmt.Sprintf("%d-%d", g, i%10))
				body := []byte(fmt.Sprintf("%d-%d", g, i%10))
				if err := s.Put("result", k, body); err != nil {
					t.Error(err)
					return
				}
				got, ok := s.Get("result", k)
				if !ok || !bytes.Equal(got, body) {
					t.Errorf("round trip %s: %q, %v", k, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 80 {
		t.Fatalf("entries = %d, want 80", st.Entries)
	}
}

func TestClosedStoreRefuses(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	key := keyOf("closed")
	if err := s.Put("result", key, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, ok := s.Get("result", key); ok {
		t.Fatal("Get succeeded on closed store")
	}
	if err := s.Put("result", keyOf("new"), []byte("b")); err == nil {
		t.Fatal("Put succeeded on closed store")
	}
}

// TestConcurrentGetOfSameTornObject races many readers onto one entry
// that rotted on disk after Open: every reader must get a miss (never
// the corrupt bytes), and exactly one of them must win the quarantine
// rename — one file in quarantine/, one Corrupt count, no
// double-counting from the racers whose rename finds the source
// already moved.
func TestConcurrentGetOfSameTornObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	key := keyOf("torn")
	if err := s.Put("result", key, []byte("torn-body")); err != nil {
		t.Fatal(err)
	}
	corruptEntryFile(t, dir, "result", key)

	const readers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	served := make(chan []byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if body, ok := s.Get("result", key); ok {
				served <- body
			}
		}()
	}
	close(start)
	wg.Wait()
	close(served)
	for body := range served {
		t.Fatalf("a reader was served the torn entry: %q", body)
	}

	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want exactly 1 (quarantine double-counted)", st.Corrupt)
	}
	if st.Entries != 0 {
		t.Fatalf("Entries = %d, want 0 after quarantine", st.Entries)
	}
	qfiles, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) != 1 {
		names := make([]string, 0, len(qfiles))
		for _, f := range qfiles {
			names = append(names, f.Name())
		}
		t.Fatalf("quarantine holds %d files %v, want exactly 1", len(qfiles), names)
	}
	// The original slot must be gone and reusable.
	if _, err := os.Lstat(filepath.Join(dir, "result", key[:2], key)); !os.IsNotExist(err) {
		t.Fatalf("torn entry still present after quarantine: %v", err)
	}
	if err := s.Put("result", key, []byte("torn-body")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("result", key); !ok || string(got) != "torn-body" {
		t.Fatalf("rewritten entry: %q, %v", got, ok)
	}
}
