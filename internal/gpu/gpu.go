// Package gpu models the GPU side of the integrated system: an array of
// streaming multiprocessors (SMs) executing warps, per-SM L1 caches
// that are write-through and flash-invalidated at kernel launch (the
// software coherence regime the paper describes for GPU L1s in §III-A),
// per-SM scratchpad ("shared memory") accesses that bypass the cache
// hierarchy, and coalesced global accesses feeding the shared,
// address-interleaved GPU L2 slices through the coherence layer.
//
// Warp execution models latency hiding the way the experiments need it:
// each SM keeps several warps resident, a blocked warp (waiting on
// global loads) yields the issue slot, and the per-SM L1 MSHR file
// bounds memory-level parallelism. Small working sets hide latency
// behind warp parallelism; big inputs exhaust MSHRs and expose it —
// reproducing the paper's observation that shared-memory benchmarks
// only benefit from direct store once inputs grow (§IV-C).
package gpu

import (
	"fmt"

	"dstore/internal/cache"
	"dstore/internal/coherence"
	"dstore/internal/cpu"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// OpKind classifies a warp instruction's memory behaviour.
type OpKind uint8

// Warp operation kinds.
const (
	// OpCompute spends Gap ticks of arithmetic.
	OpCompute OpKind = iota
	// OpShared is a scratchpad access: fixed low latency, no cache or
	// coherence traffic.
	OpShared
	// OpGlobalLoad reads Lines consecutive cache lines starting at
	// Addr; the warp blocks until all lines arrive. Lines==1 is a fully
	// coalesced 32-lane access; larger values model uncoalesced or
	// multi-line accesses.
	OpGlobalLoad
	// OpGlobalStore writes Lines consecutive cache lines; the warp does
	// not block (write-through, no allocate).
	OpGlobalStore
	// OpBarrier synchronises every warp of the kernel: a warp reaching
	// it suspends until all still-running warps arrive (or finish).
	// Kernels using barriers must fit entirely within the GPU's
	// resident-warp capacity (SMs × MaxWarpsPerSM), as on real
	// hardware's cooperative launches; Launch panics otherwise.
	OpBarrier
)

// WarpOp is one operation of a warp's instruction stream.
type WarpOp struct {
	Kind  OpKind
	Addr  memsys.Addr // virtual; first line of the access
	Lines int         // lines touched by global ops (min 1)
	Gap   sim.Tick    // compute duration for OpCompute
}

// Warp is a sequence of operations executed in order by one warp.
type Warp struct {
	Ops []WarpOp
}

// Kernel is a named collection of warps dispatched together.
type Kernel struct {
	Name  string
	Warps []Warp
}

// Config describes the GPU (Table I defaults live in the core package).
type Config struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// MaxWarpsPerSM bounds concurrently resident warps per SM.
	MaxWarpsPerSM int
	// L1 describes each SM's private L1 data cache.
	L1 cache.Config
	// L1HitLat is the L1 access latency in ticks (GPU clock domain
	// folded in).
	L1HitLat sim.Tick
	// SharedLat is the scratchpad access latency.
	SharedLat sim.Tick
	// IssueInterval is the per-SM warp-op issue spacing in ticks.
	IssueInterval sim.Tick
	// MSHRsPerSM bounds outstanding L1 misses per SM.
	MSHRsPerSM int
	// MSHRRetry is the back-off before retrying a stalled miss.
	MSHRRetry sim.Tick
	// MaxStoresPerSM bounds outstanding write-through stores per SM; a
	// warp issuing a store while the pipeline is full stalls until a
	// slot frees (real SMs back-pressure the LSU the same way).
	MaxStoresPerSM int
}

// GPU is the SM array plus its shared L2 slices (owned by the caller
// and attached at construction).
type GPU struct {
	engine *sim.Engine
	cfg    Config
	sms    []*sm
	// sliceFor routes a physical line address to its L2 slice
	// controller.
	sliceFor func(memsys.Addr) *coherence.Ctrl
	tlb      *mmu.TLB
	vers     *cpu.VersionSource

	running           bool
	warpsLeft         int
	outstandingStores int
	kernelDone        func()
	barrierWaiters    []*warpCtx

	// Observability (AttachObserver): nil in normal operation.
	obs   *obs.Observer
	obsID obs.CompID

	counters     *stats.Set
	kernels      *stats.Counter
	globalLoads  *stats.Counter
	globalStores *stats.Counter
	sharedOps    *stats.Counter
	flashed      *stats.Counter
	mshrStalls   *stats.Counter
	barriers     *stats.Counter
}

type sm struct {
	g              *GPU
	id             int
	l1             *cache.Cache
	issueFree      sim.Tick
	queue          []*warpCtx
	active         int
	storesInFlight int

	// fills is the SM's L1 MSHR file: one entry per outstanding miss,
	// linear-scanned (MSHRsPerSM is single digits). Entries and the
	// in-flight load/store carriers below are drawn from per-SM pools so
	// the steady-state memory path allocates nothing.
	fills     []*fill
	fillPool  []*fill
	loadPool  []*loadReq
	storePool []*storeReq
}

type warpCtx struct {
	s *sm
	// g duplicates s.g: exec is the hottest event in the simulator and
	// the double pointer chase through a cold sm was measurable.
	g            *GPU
	ops          []WarpOp
	pc           int
	pendingLines int
}

// loadReq carries one line of a global load from TLB translation to the
// L1 lookup (and through MSHR-full retries). Pooled per SM.
type loadReq struct {
	s    *sm
	w    *warpCtx
	line memsys.Addr
}

// fill is one outstanding L1 miss: the memory request sent to the L2
// slice plus the warps waiting on the line. The request's Done callback
// is created once, when the fill enters its pool, and reused for the
// object's lifetime.
type fill struct {
	s       *sm
	line    memsys.Addr
	waiters []*warpCtx
	req     memsys.Request
}

// storeReq carries one line of a write-through global store. Pooled per
// SM; the Done callback is created once per object.
type storeReq struct {
	s   *sm
	req memsys.Request
}

// Static event trampolines: scheduling these with a pooled or pinned
// argument allocates nothing (pointer-shaped args box for free).
func stepWarp(arg any, _ sim.Tick)     { arg.(*warpCtx).step() }
func execWarp(arg any, _ sim.Tick)     { w := arg.(*warpCtx); w.exec(&w.ops[w.pc-1]) }
func lineDoneWarp(arg any, _ sim.Tick) { arg.(*warpCtx).lineDone() }
func loadLookup(arg any, _ sim.Tick)   { lr := arg.(*loadReq); lr.s.lookupLoad(lr, false) }
func loadRetry(arg any, _ sim.Tick)    { lr := arg.(*loadReq); lr.s.lookupLoad(lr, true) }
func storeLaunch(arg any, now sim.Tick) {
	sr := arg.(*storeReq)
	sr.req.Issued = now
	sr.s.g.sliceFor(sr.req.Addr).Access(&sr.req)
}

// New builds a GPU. sliceFor must route any physical address to one of
// the GPU L2 slice controllers.
func New(engine *sim.Engine, cfg Config, tlb *mmu.TLB, vers *cpu.VersionSource,
	sliceFor func(memsys.Addr) *coherence.Ctrl) *GPU {
	if cfg.SMs <= 0 || cfg.MaxWarpsPerSM <= 0 || cfg.MSHRsPerSM <= 0 {
		panic(fmt.Sprintf("gpu %s: non-positive geometry", cfg.Name))
	}
	if cfg.IssueInterval == 0 {
		cfg.IssueInterval = 1
	}
	if cfg.MSHRRetry == 0 {
		cfg.MSHRRetry = 4
	}
	if cfg.MaxStoresPerSM == 0 {
		cfg.MaxStoresPerSM = 16
	}
	g := &GPU{
		engine:   engine,
		cfg:      cfg,
		sliceFor: sliceFor,
		tlb:      tlb,
		vers:     vers,
		counters: stats.NewSet(),
	}
	for i := 0; i < cfg.SMs; i++ {
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("%s.sm%d.l1", cfg.Name, i)
		g.sms = append(g.sms, &sm{
			g:  g,
			id: i,
			l1: cache.New(l1cfg),
		})
	}
	g.kernels = g.counters.Counter("kernel_launches")
	g.globalLoads = g.counters.Counter("global_load_lines")
	g.globalStores = g.counters.Counter("global_store_lines")
	g.sharedOps = g.counters.Counter("shared_ops")
	g.flashed = g.counters.Counter("l1_lines_flash_invalidated")
	g.mshrStalls = g.counters.Counter("l1_mshr_stalls")
	g.barriers = g.counters.Counter("barrier_arrivals")
	return g
}

// Counters exposes the GPU's statistics.
func (g *GPU) Counters() *stats.Set { return g.counters }

// AttachObserver connects the SM array to the observability layer:
// global-load completions feed the GPU load-latency histogram, and
// per-SM L1 demand accesses flow through cache access hooks.
func (g *GPU) AttachObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	g.obs = o
	g.obsID = o.Component(g.cfg.Name)
	for _, s := range g.sms {
		s := s
		id := o.Component(s.l1.Name())
		s.l1.SetAccessHook(func(a memsys.Addr, hit bool) {
			o.CacheAccess(g.engine.Now(), id, a, 1, hit, false)
		})
	}
}

// MSHRInUse returns the allocated L1 MSHR entries across all SMs
// (telemetry gauge).
func (g *GPU) MSHRInUse() int {
	n := 0
	for _, s := range g.sms {
		n += len(s.fills)
	}
	return n
}

// L1Caches returns the per-SM L1 arrays (for aggregate statistics).
func (g *GPU) L1Caches() []*cache.Cache {
	out := make([]*cache.Cache, len(g.sms))
	for i, s := range g.sms {
		out[i] = s.l1
	}
	return out
}

// Launch dispatches a kernel: flash-invalidates every L1 (the paper's
// software L1-coherence regime), distributes warps round-robin over the
// SMs, and fires done when every warp has finished and every store has
// reached the L2.
func (g *GPU) Launch(k Kernel, done func()) {
	if g.running {
		panic(fmt.Sprintf("gpu %s: Launch while a kernel is running", g.cfg.Name))
	}
	if len(k.Warps) == 0 {
		if done != nil {
			g.engine.Schedule(0, done)
		}
		return
	}
	if kernelUsesBarriers(k) && len(k.Warps) > g.cfg.SMs*g.cfg.MaxWarpsPerSM {
		panic(fmt.Sprintf("gpu %s: kernel %q uses barriers with %d warps, above the resident capacity %d",
			g.cfg.Name, k.Name, len(k.Warps), g.cfg.SMs*g.cfg.MaxWarpsPerSM))
	}
	g.running = true
	g.kernels.Inc()
	g.kernelDone = done
	g.warpsLeft = len(k.Warps)
	for _, s := range g.sms {
		g.flashed.Add(uint64(s.l1.InvalidateAll()))
	}
	// One contiguous arena for the kernel's warp contexts: warps step
	// interleaved, so dense layout keeps the hot pc/pendingLines words
	// of neighbouring warps on shared cache lines.
	ctxs := make([]warpCtx, len(k.Warps))
	for i := range k.Warps {
		s := g.sms[i%len(g.sms)]
		ctxs[i] = warpCtx{s: s, g: g, ops: k.Warps[i].Ops}
		s.queue = append(s.queue, &ctxs[i])
	}
	for _, s := range g.sms {
		s.fillActive()
	}
}

// kernelUsesBarriers reports whether any warp contains an OpBarrier.
func kernelUsesBarriers(k Kernel) bool {
	for _, w := range k.Warps {
		for _, op := range w.Ops {
			if op.Kind == OpBarrier {
				return true
			}
		}
	}
	return false
}

// fillActive starts queued warps up to the residency bound.
func (s *sm) fillActive() {
	for s.active < s.g.cfg.MaxWarpsPerSM && len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.active++
		s.g.engine.ScheduleArg(0, stepWarp, w)
	}
}

// step advances a warp to its next operation. The scheduled exec event
// re-reads the operation from w.ops[w.pc-1], so no per-op closure is
// needed; pc does not move again until the operation completes.
func (w *warpCtx) step() {
	if w.pc >= len(w.ops) {
		w.done()
		return
	}
	w.pc++
	s := w.s
	now := s.g.engine.Now()
	slot := now
	if s.issueFree > slot {
		slot = s.issueFree
	}
	s.issueFree = slot + s.g.cfg.IssueInterval
	s.g.engine.ScheduleArgAt(slot, execWarp, w)
}

func (w *warpCtx) exec(op *WarpOp) {
	g := w.g
	switch op.Kind {
	case OpCompute:
		g.engine.ScheduleArg(op.Gap, stepWarp, w)
	case OpShared:
		g.sharedOps.Inc()
		g.engine.ScheduleArg(g.cfg.SharedLat, stepWarp, w)
	case OpGlobalLoad:
		lines := op.Lines
		if lines < 1 {
			lines = 1
		}
		g.globalLoads.Add(uint64(lines))
		w.pendingLines = lines
		for i := 0; i < lines; i++ {
			w.s.serveLoad(w, op.Addr+memsys.Addr(i)*memsys.LineSize)
		}
	case OpBarrier:
		g.barriers.Inc()
		g.barrierWaiters = append(g.barrierWaiters, w)
		g.checkBarrierRelease()
	case OpGlobalStore:
		if w.s.storesInFlight >= g.cfg.MaxStoresPerSM {
			// Store pipeline full: the warp stalls until a slot frees.
			// pc already points past op, so the retry re-executes it.
			g.engine.ScheduleArg(g.cfg.MSHRRetry, execWarp, w)
			return
		}
		lines := op.Lines
		if lines < 1 {
			lines = 1
		}
		g.globalStores.Add(uint64(lines))
		for i := 0; i < lines; i++ {
			w.s.issueStore(op.Addr + memsys.Addr(i)*memsys.LineSize)
		}
		// Write-through stores do not block the warp once accepted.
		g.engine.ScheduleArg(g.cfg.IssueInterval, stepWarp, w)
	default:
		panic(fmt.Sprintf("gpu: unknown warp op kind %d", op.Kind))
	}
}

// lineDone retires one of a load's lines; the warp resumes when all
// arrive.
func (w *warpCtx) lineDone() {
	w.pendingLines--
	if w.pendingLines == 0 {
		w.step()
	}
}

func (w *warpCtx) done() {
	s := w.s
	g := s.g
	s.active--
	s.fillActive()
	g.warpsLeft--
	g.checkBarrierRelease()
	g.checkKernelDone()
}

// checkBarrierRelease resumes the barrier waiters once every
// still-running warp has arrived.
func (g *GPU) checkBarrierRelease() {
	if len(g.barrierWaiters) == 0 || len(g.barrierWaiters) < g.warpsLeft {
		return
	}
	ws := g.barrierWaiters
	g.barrierWaiters = nil
	for _, w := range ws {
		g.engine.ScheduleArg(1, stepWarp, w)
	}
}

func (g *GPU) checkKernelDone() {
	if g.warpsLeft != 0 || g.outstandingStores != 0 || !g.running {
		return
	}
	g.running = false
	if g.kernelDone != nil {
		done := g.kernelDone
		g.kernelDone = nil
		g.engine.Schedule(0, done)
	}
}

// serveLoad runs one line of a global load through the SM's L1 and, on
// a miss, the owning L2 slice.
func (s *sm) serveLoad(w *warpCtx, va memsys.Addr) {
	g := s.g
	pa, tlbLat, _, err := g.tlb.Translate(va)
	if err != nil {
		panic(fmt.Sprintf("gpu %s: translation failed: %v", g.cfg.Name, err))
	}
	var lr *loadReq
	if n := len(s.loadPool); n > 0 {
		lr = s.loadPool[n-1]
		s.loadPool = s.loadPool[:n-1]
	} else {
		lr = &loadReq{}
	}
	lr.s, lr.w, lr.line = s, w, memsys.LineAlign(pa)
	g.engine.ScheduleArg(tlbLat, loadLookup, lr)
}

// lookupLoad runs one line through the L1. retry marks an access that
// was already counted and then stalled on a full MSHR file — retries
// refresh replacement state but stay invisible to the statistics. The
// loadReq returns to its pool as soon as the line's fate is settled
// (hit, merged, or handed to a fill); a stalled miss keeps it for the
// retry.
func (s *sm) lookupLoad(lr *loadReq, retry bool) {
	g := s.g
	w, line := lr.w, lr.line
	var hit bool
	if retry {
		_, hit = s.l1.Touch(line)
	} else {
		_, hit = s.l1.Lookup(line)
	}
	if hit {
		s.loadPool = append(s.loadPool, lr)
		g.obs.Latency(g.engine.Now(), g.obsID, obs.HistGPULoadLat, line, g.cfg.L1HitLat)
		g.engine.ScheduleArg(g.cfg.L1HitLat, lineDoneWarp, w)
		return
	}
	for _, f := range s.fills {
		if f.line == line {
			s.loadPool = append(s.loadPool, lr)
			f.waiters = append(f.waiters, w)
			return
		}
	}
	if len(s.fills) >= g.cfg.MSHRsPerSM {
		g.mshrStalls.Inc()
		g.engine.ScheduleArg(g.cfg.MSHRRetry, loadRetry, lr)
		return
	}
	s.loadPool = append(s.loadPool, lr)
	var f *fill
	if n := len(s.fillPool); n > 0 {
		f = s.fillPool[n-1]
		s.fillPool = s.fillPool[:n-1]
	} else {
		f = &fill{s: s}
		f.req.Done = f.done
	}
	f.line = line
	f.waiters = append(f.waiters[:0], w)
	f.req.Type, f.req.Addr, f.req.Ver = memsys.Load, line, 0
	f.req.Issued = g.engine.Now()
	s.fills = append(s.fills, f)
	g.sliceFor(line).Access(&f.req)
}

// done retires an outstanding miss: the line is installed, the MSHR
// entry freed before the waiters resume (matching the allocate path's
// view of a full file), and the fill recycled.
func (f *fill) done(now sim.Tick) {
	s := f.s
	g := s.g
	g.obs.Latency(now, g.obsID, obs.HistGPULoadLat, f.line, now-f.req.Issued)
	s.l1.Insert(f.line, 1, false)
	for i, x := range s.fills {
		if x == f {
			s.fills = append(s.fills[:i], s.fills[i+1:]...)
			break
		}
	}
	for _, w := range f.waiters {
		w.lineDone()
	}
	f.waiters = f.waiters[:0]
	s.fillPool = append(s.fillPool, f)
}

// issueStore sends one line of a global store through the write-through
// path: the L1 is updated if present (never allocated) and the store
// proceeds to the owning slice.
func (s *sm) issueStore(va memsys.Addr) {
	g := s.g
	pa, tlbLat, _, err := g.tlb.Translate(va)
	if err != nil {
		panic(fmt.Sprintf("gpu %s: translation failed: %v", g.cfg.Name, err))
	}
	line := memsys.LineAlign(pa)
	g.outstandingStores++
	s.storesInFlight++
	ver := g.vers.Next()
	// Write-through, write-no-allocate L1: a resident copy is freshened
	// in place (no state change — data is not modelled), an absent line
	// is not allocated.
	var sr *storeReq
	if n := len(s.storePool); n > 0 {
		sr = s.storePool[n-1]
		s.storePool = s.storePool[:n-1]
	} else {
		sr = &storeReq{s: s}
		sr.req.Done = sr.done
	}
	sr.req.Type, sr.req.Addr, sr.req.Ver = memsys.Store, line, ver
	g.engine.ScheduleArg(tlbLat, storeLaunch, sr)
}

// done retires a write-through store and recycles its carrier.
func (sr *storeReq) done(sim.Tick) {
	s := sr.s
	g := s.g
	g.outstandingStores--
	s.storesInFlight--
	s.storePool = append(s.storePool, sr)
	g.checkKernelDone()
}
