package gpu

import (
	"dstore/internal/sim"
	"dstore/internal/snap"
)

// SnapshotTo serialises the GPU at a quiescent point. A GPU that has
// never launched a kernel is written as a single "virgin" marker with
// no per-SM state: a fresh system's GPU is already in that state, so
// such snapshots restore into a system with a *different* GPU shape
// (SM count, L1 geometry, warp limit). That is what makes warm-prefix
// sharing across GPU-side configuration sweeps sound — the CPU
// produce phase cannot touch the GPU pipeline, only the L2 slices,
// which are keyed and restored exactly. A GPU with kernel history
// serialises per-SM issue cursors, L1 arrays, the TLB and counters,
// and restores only into a matching shape.
func (g *GPU) SnapshotTo(w *snap.Writer) {
	w.Tag("gpu")
	quiet := !g.running && g.warpsLeft == 0 && g.outstandingStores == 0 && len(g.barrierWaiters) == 0
	for _, s := range g.sms {
		quiet = quiet && s.storesInFlight == 0 && len(s.fills) == 0 && len(s.queue) == 0 && s.active == 0
	}
	w.Bool(quiet)
	virgin := quiet && g.kernels.Value() == 0
	w.Bool(virgin)
	if virgin {
		return
	}
	w.U32(uint32(len(g.sms)))
	for _, s := range g.sms {
		w.I64(int64(s.issueFree))
		s.l1.SnapshotTo(w)
	}
	g.tlb.SnapshotTo(w)
	g.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the GPU's state from a snapshot.
func (g *GPU) RestoreFrom(r *snap.Reader) {
	r.Tag("gpu")
	if r.Err() == nil && !r.Bool() {
		r.Failf("gpu: snapshot was taken with a kernel in flight")
	}
	if r.Err() != nil {
		return
	}
	if g.running || g.warpsLeft != 0 || g.outstandingStores != 0 {
		r.Failf("gpu: restore into a GPU with a kernel in flight")
		return
	}
	if r.Bool() {
		return // virgin: the fresh GPU is already in snapshot state
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(g.sms) {
		r.Failf("gpu: snapshot has %d SMs, configured %d", n, len(g.sms))
	}
	if r.Err() != nil {
		return
	}
	for _, s := range g.sms {
		s.issueFree = sim.Tick(r.I64())
		s.l1.RestoreFrom(r)
	}
	g.tlb.RestoreFrom(r)
	g.counters.RestoreFrom(r)
}
