package gpu

import (
	"testing"
	"testing/quick"

	"dstore/internal/cache"
	"dstore/internal/coherence"
	"dstore/internal/cpu"
	"dstore/internal/dram"
	"dstore/internal/interconnect"
	"dstore/internal/memalloc"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/sim"
)

type rig struct {
	e      *sim.Engine
	g      *GPU
	slices []*coherence.Ctrl
	cpuC   *coherence.Ctrl
	mem    *coherence.MemCtrl
	pt     *mmu.PageTable
	vers   *cpu.VersionSource
}

func newRig(t *testing.T, sms, warpsPerSM, mshrs int) *rig {
	t.Helper()
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	const nSlices = 2
	sliceName := func(i int) string { return []string{"gpu0", "gpu1"}[i] }
	mem := coherence.NewMemCtrl(e, "mem", xbar, d, func(a memsys.Addr, req string) []string {
		var out []string
		for _, n := range []string{"cpu", sliceName(memsys.SliceFor(a, nSlices))} {
			if n != req {
				out = append(out, n)
			}
		}
		return out
	})
	cpuC := coherence.NewCtrl(e, coherence.CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "cpu.l2", SizeBytes: 64 * 1024, Ways: 8},
		L2HitLat: 12, MSHRs: 8,
	}, xbar, mem)
	var slices []*coherence.Ctrl
	for i := 0; i < nSlices; i++ {
		slices = append(slices, coherence.NewCtrl(e, coherence.CtrlConfig{
			Name:     sliceName(i),
			L2:       cache.Config{Name: sliceName(i) + ".l2", SizeBytes: 32 * 1024, Ways: 8},
			L2HitLat: 12, MSHRs: 16,
		}, xbar, mem))
	}
	direct := interconnect.NewLink(e, "direct", 20, 16)
	cpuC.AttachDirectStore(direct, func(a memsys.Addr) *coherence.Ctrl {
		return slices[memsys.SliceFor(a, nSlices)]
	})
	pt := mmu.NewPageTable(1 << 30)
	gtlb := mmu.NewTLB(pt, mmu.Config{
		Name: "gpu.tlb", Entries: 256, HitLatency: 1, WalkLatency: 30,
		DirectBase: memalloc.DirectStoreBase, DirectLimit: memalloc.DirectStoreLimit,
	})
	vers := &cpu.VersionSource{}
	g := New(e, Config{
		Name: "gpu", SMs: sms, MaxWarpsPerSM: warpsPerSM,
		L1:       cache.Config{Name: "l1", SizeBytes: 2 * 1024, Ways: 4},
		L1HitLat: 20, SharedLat: 10, MSHRsPerSM: mshrs,
	}, gtlb, vers, func(a memsys.Addr) *coherence.Ctrl {
		return slices[memsys.SliceFor(a, nSlices)]
	})
	return &rig{e: e, g: g, slices: slices, cpuC: cpuC, mem: mem, pt: pt, vers: vers}
}

// launch runs a kernel to completion and returns the finish tick.
func (r *rig) launch(t *testing.T, k Kernel) sim.Tick {
	t.Helper()
	done := false
	var at sim.Tick
	r.g.Launch(k, func() { done = true; at = r.e.Now() })
	r.e.Run()
	if !done {
		t.Fatalf("kernel %q did not complete", k.Name)
	}
	return at
}

// sliceAccesses sums demand accesses over the slices.
func (r *rig) sliceAccesses() uint64 {
	var n uint64
	for _, s := range r.slices {
		n += s.L2Cache().Counters().Get("accesses")
	}
	return n
}

func loadWarp(addrs ...memsys.Addr) Warp {
	var ops []WarpOp
	for _, a := range addrs {
		ops = append(ops, WarpOp{Kind: OpGlobalLoad, Addr: a, Lines: 1})
	}
	return Warp{Ops: ops}
}

func TestComputeOnlyKernelCompletes(t *testing.T) {
	r := newRig(t, 2, 4, 8)
	at := r.launch(t, Kernel{Name: "k", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpCompute, Gap: 100}}},
		{Ops: []WarpOp{{Kind: OpCompute, Gap: 200}}},
	}})
	if at < 200 {
		t.Errorf("kernel finished at %d, before its longest warp", at)
	}
	if r.sliceAccesses() != 0 {
		t.Error("compute kernel touched the L2")
	}
}

func TestGlobalLoadMissesThenL1Hits(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	a := memsys.Addr(0x10000)
	r.launch(t, Kernel{Name: "k", Warps: []Warp{loadWarp(a, a)}})
	if got := r.sliceAccesses(); got != 1 {
		t.Errorf("slice accesses = %d, want 1 (second load must hit L1)", got)
	}
	l1 := r.g.L1Caches()[0]
	if l1.Counters().Get("hits") != 1 {
		t.Errorf("L1 hits = %d, want 1", l1.Counters().Get("hits"))
	}
}

func TestFlashInvalidateOnLaunch(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	a := memsys.Addr(0x10000)
	r.launch(t, Kernel{Name: "k1", Warps: []Warp{loadWarp(a)}})
	first := r.sliceAccesses()
	r.launch(t, Kernel{Name: "k2", Warps: []Warp{loadWarp(a)}})
	if got := r.sliceAccesses(); got != first+1 {
		t.Errorf("slice accesses after relaunch = %d, want %d (L1 flash forces refetch)", got, first+1)
	}
	if r.g.Counters().Get("l1_lines_flash_invalidated") == 0 {
		t.Error("no lines flash invalidated")
	}
}

func TestUncoalescedAccessTouchesEachLine(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	r.launch(t, Kernel{Name: "k", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpGlobalLoad, Addr: 0x10000, Lines: 4}}},
	}})
	if got := r.g.Counters().Get("global_load_lines"); got != 4 {
		t.Errorf("load lines = %d, want 4", got)
	}
	if got := r.sliceAccesses(); got != 4 {
		t.Errorf("slice accesses = %d, want 4", got)
	}
}

func TestStoreWriteThroughReachesSlice(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	a := memsys.Addr(0x10000)
	r.launch(t, Kernel{Name: "k", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpGlobalStore, Addr: a, Lines: 1}}},
	}})
	pa, _ := r.pt.Lookup(a)
	slice := r.slices[memsys.SliceFor(pa, 2)]
	if st := slice.State(pa); st != coherence.MM {
		t.Errorf("stored line state %s, want MM", coherence.StateName(st))
	}
	if slice.Ver(pa) == 0 {
		t.Error("store version not recorded at slice")
	}
	// Write-no-allocate: the L1 must not hold the line.
	if r.g.L1Caches()[0].Contains(pa) {
		t.Error("store allocated into L1")
	}
}

func TestKernelWaitsForOutstandingStores(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	at := r.launch(t, Kernel{Name: "k", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpGlobalStore, Addr: 0x10000, Lines: 1}}},
	}})
	// The store's GETX round trip takes well over 50 ticks; a kernel
	// that "finished" earlier ignored the outstanding store.
	if at < 50 {
		t.Errorf("kernel completed at %d, before its store could commit", at)
	}
	if !r.mem.Idle() {
		t.Error("memory controller busy after kernel completion")
	}
}

func TestSharedOpsBypassHierarchy(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	r.launch(t, Kernel{Name: "k", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpShared}, {Kind: OpShared}}},
	}})
	if r.g.Counters().Get("shared_ops") != 2 {
		t.Error("shared ops miscounted")
	}
	if r.sliceAccesses() != 0 {
		t.Error("shared ops generated L2 traffic")
	}
}

func TestPushedDataServedFromSliceWithoutCoherenceTraffic(t *testing.T) {
	r := newRig(t, 1, 1, 8)
	va := memsys.Addr(0x10000)
	pa, err := r.pt.EnsureMapped(va)
	if err != nil {
		t.Fatal(err)
	}
	// CPU pushes the line (direct store).
	pushDone := false
	r.cpuC.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: pa, Ver: 77,
		Done: func(sim.Tick) { pushDone = true }})
	r.e.Run()
	if !pushDone {
		t.Fatal("push did not complete")
	}
	before := r.mem.Counters().Get("requests")
	r.launch(t, Kernel{Name: "k", Warps: []Warp{loadWarp(va)}})
	if got := r.mem.Counters().Get("requests"); got != before {
		t.Errorf("kernel read of pushed line generated %d coherence transactions", got-before)
	}
}

func TestWarpParallelismHidesLatency(t *testing.T) {
	const n = 16
	// One warp doing n dependent cold loads.
	serial := newRig(t, 1, 1, 32)
	var addrs []memsys.Addr
	for i := 0; i < n; i++ {
		addrs = append(addrs, memsys.Addr(0x10000)+memsys.Addr(i)*memsys.LineSize)
	}
	tSerial := serial.launch(t, Kernel{Name: "serial", Warps: []Warp{loadWarp(addrs...)}})

	// n warps doing one load each.
	par := newRig(t, 1, n, 32)
	var warps []Warp
	for i := 0; i < n; i++ {
		warps = append(warps, loadWarp(addrs[i]))
	}
	tPar := par.launch(t, Kernel{Name: "par", Warps: warps})
	if tPar*2 >= tSerial {
		t.Errorf("parallel warps (%d) not at least 2x faster than serial (%d)", tPar, tSerial)
	}
}

func TestMSHRBoundLimitsParallelism(t *testing.T) {
	mkKernel := func() Kernel {
		var warps []Warp
		for i := 0; i < 16; i++ {
			warps = append(warps, loadWarp(memsys.Addr(0x10000)+memsys.Addr(i)*memsys.LineSize))
		}
		return Kernel{Name: "k", Warps: warps}
	}
	narrow := newRig(t, 1, 16, 1)
	tNarrow := narrow.launch(t, mkKernel())
	wide := newRig(t, 1, 16, 16)
	tWide := wide.launch(t, mkKernel())
	if tWide >= tNarrow {
		t.Errorf("wide MSHRs (%d) not faster than single MSHR (%d)", tWide, tNarrow)
	}
	if narrow.g.Counters().Get("l1_mshr_stalls") == 0 {
		t.Error("no MSHR stalls with 1 MSHR and 16 warps")
	}
}

func TestEmptyKernelFiresDone(t *testing.T) {
	r := newRig(t, 1, 1, 4)
	done := false
	r.g.Launch(Kernel{Name: "empty"}, func() { done = true })
	r.e.Run()
	if !done {
		t.Error("empty kernel did not complete")
	}
}

func TestLaunchWhileRunningPanics(t *testing.T) {
	r := newRig(t, 1, 1, 4)
	r.g.Launch(Kernel{Name: "k", Warps: []Warp{{Ops: []WarpOp{{Kind: OpCompute, Gap: 10}}}}}, nil)
	defer func() {
		if recover() == nil {
			t.Error("second launch did not panic")
		}
	}()
	r.g.Launch(Kernel{Name: "k2", Warps: []Warp{{}}}, nil)
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero SMs did not panic")
		}
	}()
	New(sim.NewEngine(), Config{Name: "bad", SMs: 0, MaxWarpsPerSM: 1, MSHRsPerSM: 1}, nil, nil, nil)
}

func TestWarpsDistributedAcrossSMs(t *testing.T) {
	r := newRig(t, 4, 1, 8)
	var warps []Warp
	for i := 0; i < 8; i++ {
		warps = append(warps, Warp{Ops: []WarpOp{{Kind: OpShared}}})
	}
	r.launch(t, Kernel{Name: "k", Warps: warps})
	// All 4 SMs should have seen work: with 1 resident warp per SM and 8
	// warps, every SM runs exactly 2.
	if r.g.Counters().Get("shared_ops") != 8 {
		t.Error("not all warps executed")
	}
}

// Property: any kernel built from random small warps completes, with
// load/store line counts conserved and the memory controller idle.
func TestPropertyKernelsComplete(t *testing.T) {
	f := func(spec []uint16) bool {
		r := newRig(t, 2, 4, 4)
		var warps []Warp
		var wantLoads, wantStores uint64
		for _, s := range spec {
			var ops []WarpOp
			for j := 0; j < int(s%3)+1; j++ {
				a := memsys.Addr(0x10000) + memsys.Addr((int(s)+j)%16)*memsys.LineSize
				switch (int(s) + j) % 4 {
				case 0:
					ops = append(ops, WarpOp{Kind: OpCompute, Gap: sim.Tick(s % 50)})
				case 1:
					ops = append(ops, WarpOp{Kind: OpShared})
				case 2:
					ops = append(ops, WarpOp{Kind: OpGlobalLoad, Addr: a, Lines: 1})
					wantLoads++
				case 3:
					ops = append(ops, WarpOp{Kind: OpGlobalStore, Addr: a, Lines: 1})
					wantStores++
				}
			}
			warps = append(warps, Warp{Ops: ops})
		}
		if len(warps) == 0 {
			return true
		}
		done := false
		r.g.Launch(Kernel{Name: "p", Warps: warps}, func() { done = true })
		r.e.Run()
		return done &&
			r.g.Counters().Get("global_load_lines") == wantLoads &&
			r.g.Counters().Get("global_store_lines") == wantStores &&
			r.mem.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBarrierSynchronisesWarps(t *testing.T) {
	// Warp A computes briefly then waits at the barrier; warp B
	// computes for a long time. Both must pass the barrier together.
	r := newRig(t, 2, 4, 8)
	var passedAt []sim.Tick
	record := func() WarpOp { return WarpOp{Kind: OpShared} }
	_ = record
	k := Kernel{Name: "bar", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpCompute, Gap: 10}, {Kind: OpBarrier}, {Kind: OpShared}}},
		{Ops: []WarpOp{{Kind: OpCompute, Gap: 500}, {Kind: OpBarrier}, {Kind: OpShared}}},
	}}
	done := false
	r.g.Launch(k, func() { done = true; passedAt = append(passedAt, r.e.Now()) })
	r.e.Run()
	if !done {
		t.Fatal("barrier kernel did not complete")
	}
	// Completion must be after the slow warp's 500-tick compute: the
	// fast warp cannot have finished earlier.
	if r.e.Now() < 500 {
		t.Errorf("kernel completed at %d, before the slow warp reached the barrier", r.e.Now())
	}
	if r.g.Counters().Get("barrier_arrivals") != 2 {
		t.Errorf("barrier arrivals = %d, want 2", r.g.Counters().Get("barrier_arrivals"))
	}
}

func TestBarrierWithFinishedWarps(t *testing.T) {
	// One warp has no barrier and finishes early; the other two wait.
	// The barrier must release once the finished warp is accounted for.
	r := newRig(t, 2, 4, 8)
	k := Kernel{Name: "bar2", Warps: []Warp{
		{Ops: []WarpOp{{Kind: OpShared}}}, // no barrier, finishes
		{Ops: []WarpOp{{Kind: OpBarrier}, {Kind: OpShared}}},
		{Ops: []WarpOp{{Kind: OpCompute, Gap: 100}, {Kind: OpBarrier}, {Kind: OpShared}}},
	}}
	done := false
	r.g.Launch(k, func() { done = true })
	r.e.Run()
	if !done {
		t.Fatal("kernel with mixed barrier/no-barrier warps deadlocked")
	}
}

func TestBarrierOverCapacityPanics(t *testing.T) {
	r := newRig(t, 1, 2, 4) // capacity: 1 SM x 2 warps
	var warps []Warp
	for i := 0; i < 3; i++ {
		warps = append(warps, Warp{Ops: []WarpOp{{Kind: OpBarrier}}})
	}
	defer func() {
		if recover() == nil {
			t.Error("barrier kernel above residency accepted (would deadlock)")
		}
	}()
	r.g.Launch(Kernel{Name: "dead", Warps: warps}, nil)
}
