package bench

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dstore/internal/core"
)

// subsetJobs builds default-config jobs for a fast benchmark subset.
func subsetJobs(codes ...string) []SweepJob {
	jobs := make([]SweepJob, len(codes))
	for i, code := range codes {
		jobs[i] = SweepJob{
			Code: code, In: Small,
			Base: core.DefaultConfig(core.ModeCCSM),
			DS:   core.DefaultConfig(core.ModeDirectStore),
		}
	}
	return jobs
}

// TestParallelSweepDeterminism is the guardrail that keeps parallelism
// honest: the same sweep run twice sequentially and once with many
// workers must produce deeply identical Result structs — ticks, phase
// ticks, miss counts, pushes and traffic bytes, not just headline
// numbers.
func TestParallelSweepDeterminism(t *testing.T) {
	jobs := subsetJobs("BP", "HT", "GC", "BL", "PT")
	seq1, err := SweepWithConfigs(jobs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := SweepWithConfigs(jobs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepWithConfigs(jobs, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq1, seq2) {
		t.Fatalf("two sequential sweeps diverged:\n%+v\nvs\n%+v", seq1, seq2)
	}
	if !reflect.DeepEqual(seq1, par) {
		t.Fatalf("parallel sweep diverged from sequential:\n%+v\nvs\n%+v", seq1, par)
	}
	for i, c := range par {
		if c.Code != jobs[i].Code {
			t.Errorf("result %d is %s, want %s: order not stable", i, c.Code, jobs[i].Code)
		}
	}
}

func TestRunAllParallelMatchesRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II sweep in -short mode")
	}
	seq, err := RunAll(Small)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(Small, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("RunAllParallel diverged from RunAll")
	}
}

// TestSweepAttemptsEveryJob pins the RunAll bugfix: a failing benchmark
// must not abort the sweep; every other job still runs and the error
// reports each failure with its position.
func TestSweepAttemptsEveryJob(t *testing.T) {
	jobs := subsetJobs("BP", "XX", "GC", "YY", "PT") // XX and YY do not exist
	results, err := SweepWithConfigs(jobs, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("sweep with unknown benchmarks reported no error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("sweep error is %T, want *SweepError", err)
	}
	if len(se.Failures) != 2 {
		t.Fatalf("%d failures, want 2: %v", len(se.Failures), se)
	}
	if se.Failures[0].Index != 1 || se.Failures[0].Code != "XX" ||
		se.Failures[1].Index != 3 || se.Failures[1].Code != "YY" {
		t.Errorf("failures misattributed: %+v", se.Failures)
	}
	failed := se.FailedIndices()
	for i, c := range results {
		if failed[i] {
			continue
		}
		if c.CCSM.Ticks == 0 || c.DS.Ticks == 0 {
			t.Errorf("successful job %d (%s) has empty results despite sibling failure", i, jobs[i].Code)
		}
	}
}

func TestSweepErrorMessageListsAllFailures(t *testing.T) {
	se := &SweepError{Failures: []JobError{
		{Index: 0, Code: "XX", In: Small, Err: errors.New("boom")},
		{Index: 5, Code: "YY", In: Big, Err: errors.New("bang")},
	}}
	msg := se.Error()
	for _, want := range []string{"XX", "YY", "boom", "bang"} {
		if !strings.Contains(msg, want) {
			t.Errorf("sweep error %q missing %q", msg, want)
		}
	}
	if errs := se.Unwrap(); len(errs) != 2 {
		t.Errorf("Unwrap returned %d errors, want 2", len(errs))
	}
}

func TestSweepWorkerDefaults(t *testing.T) {
	if w := (SweepOptions{}).workers(100); w < 1 {
		t.Errorf("default workers %d, want >= 1", w)
	}
	if w := (SweepOptions{Workers: 16}).workers(3); w != 3 {
		t.Errorf("workers capped at %d, want 3 (job count)", w)
	}
	if w := (SweepOptions{Workers: -2}).workers(0); w != 1 {
		t.Errorf("workers on empty job list = %d, want 1", w)
	}
}

func TestStandardJobsCoverTable2(t *testing.T) {
	jobs := StandardJobs(Big)
	codes := Codes()
	if len(jobs) != len(codes) {
		t.Fatalf("%d jobs, want %d", len(jobs), len(codes))
	}
	for i, j := range jobs {
		if j.Code != codes[i] || j.In != Big {
			t.Errorf("job %d = %s/%s, want %s/big", i, j.Code, j.In, codes[i])
		}
		if j.Base.Mode != core.ModeCCSM || j.DS.Mode != core.ModeDirectStore {
			t.Errorf("job %d modes = %v vs %v", i, j.Base.Mode, j.DS.Mode)
		}
	}
}
