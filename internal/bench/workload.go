package bench

import (
	"context"
	"fmt"
	"math"

	"dstore/internal/core"
	"dstore/internal/cpu"
	"dstore/internal/gpu"
	"dstore/internal/memsys"
	"dstore/internal/sim"
	"dstore/internal/trace"
)

// phase is one step of a workload: a CPU op stream or a GPU kernel.
type phase struct {
	ops    []cpu.Op
	kernel *gpu.Kernel
}

// Workload is a benchmark instantiated against a system's address
// space, ready to run.
type Workload struct {
	Code   string
	In     Input
	phases []phase
}

// Phases returns the number of phases (test hook).
func (w *Workload) Phases() int { return len(w.phases) }

// autoWarps sizes the warp count to the work: enough to spread lines
// across SMs, bounded to keep small benchmarks from degenerating to one
// warp and big ones from exploding the scheduler.
func autoWarps(lines int) int {
	w := lines / 16
	if w < 8 {
		w = 8
	}
	if w > 96 {
		w = 96
	}
	return w
}

// Build instantiates benchmark code for the given input against sys,
// allocating its regions in the system's address space (heap in CCSM
// mode, the reserved direct-store arena otherwise — exactly what the
// translator's rewrite achieves).
func Build(sys *core.System, code string, in Input) (*Workload, error) {
	p, ok := find(code)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", code)
	}
	w := &Workload{Code: code, In: in}

	// Allocate regions and derive the read walk.
	var readLines []memsys.Addr // one pass over the input
	var produceLines []memsys.Addr
	if p.pattern == patGraph {
		nodes := p.graphNodes[in]
		rng := sim.NewRand(0xbadc0de ^ uint64(nodes))
		nodeBytes := uint64(nodes * 4)
		nodeBase, err := sys.AllocShared(nodeBytes, code+".nodes")
		if err != nil {
			return nil, err
		}
		// Build the graph against virtual bases.
		g := trace.NewGraph(nodes, p.graphDeg, nodeBase, 0, rng)
		edgeBytes := uint64(g.Edges() * 4)
		edgeBase, err := sys.AllocShared(edgeBytes, code+".edges")
		if err != nil {
			return nil, err
		}
		g = regraph(g, nodeBase, edgeBase)
		readLines = trace.Dedup(g.TraverseLines())
		produceLines = append(trace.SequentialLines(nodeBase, nodeBytes),
			trace.SequentialLines(edgeBase, edgeBytes)...)
	} else {
		bytes := p.inBytes[in]
		base, err := sys.AllocShared(bytes, code+".in")
		if err != nil {
			return nil, err
		}
		produceLines = trace.SequentialLines(base, bytes)
		switch p.pattern {
		case patSequential:
			readLines = produceLines
		case patStrided:
			readLines = trace.StridedLines(base, bytes, p.strideLines)
		case patTiled:
			side := int(math.Sqrt(float64(bytes / 4)))
			if side < 1 {
				side = 1
			}
			readLines = trace.TiledLines(base, side, side, 4, 16, 16)
		}
	}

	var outLines []memsys.Addr
	if p.outBytes[in] > 0 {
		outBase, err := sys.AllocShared(p.outBytes[in], code+".out")
		if err != nil {
			return nil, err
		}
		outLines = trace.SequentialLines(outBase, p.outBytes[in])
	}

	// Phase 1: the CPU produces the input (or, for PT-style
	// benchmarks, the GPU initialises its own data).
	if p.cpuProduces {
		gap := p.produceGap[in]
		ops := make([]cpu.Op, 0, len(produceLines))
		for _, a := range produceLines {
			ops = append(ops, cpu.Op{Type: memsys.Store, Addr: a, Gap: gap})
		}
		w.phases = append(w.phases, phase{ops: ops})
	} else {
		init := buildInitKernel(p.code, produceLines)
		w.phases = append(w.phases, phase{kernel: &init})
	}

	// Kernel phases.
	passes := p.passes[in]
	for k := 0; k < p.kernels; k++ {
		kern := buildKernel(p, in, k, passes, readLines, outLines)
		w.phases = append(w.phases, phase{kernel: &kern})
	}

	// Readback phase: the CPU consumes a bounded sample of the results
	// (final row / score / residual). The memcpy-free benchmark
	// versions drop full-array host verification along with the copies
	// (§IV-B), so the CPU-side consumption is a summary, not a sweep.
	if p.readback {
		rb := outLines
		cap := 64
		if len(rb) == 0 {
			rb = produceLines
			cap = 16
		}
		if len(rb) > cap {
			rb = rb[len(rb)-cap:]
		}
		ops := make([]cpu.Op, 0, len(rb))
		for _, a := range rb {
			ops = append(ops, cpu.Op{Type: memsys.Load, Addr: a})
		}
		w.phases = append(w.phases, phase{ops: ops})
	}
	return w, nil
}

// regraph rebuilds a graph's address bases once the edge region size is
// known (the graph shape is regenerated with the same seed-derived
// structure preserved by construction order).
func regraph(g *trace.Graph, nodeBase, edgeBase memsys.Addr) *trace.Graph {
	g.NodeBase = nodeBase
	g.EdgeBase = edgeBase
	return g
}

// buildInitKernel writes every input line from the GPU (PT-style
// self-initialisation: the CPU never produces the data).
func buildInitKernel(code string, lines []memsys.Addr) gpu.Kernel {
	warps := autoWarps(len(lines))
	chunks := trace.Chunk(lines, warps)
	ws := make([]gpu.Warp, 0, len(chunks))
	for _, chunk := range chunks {
		ops := make([]gpu.WarpOp, 0, len(chunk))
		for _, a := range chunk {
			ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalStore, Addr: a, Lines: 1})
		}
		ws = append(ws, gpu.Warp{Ops: ops})
	}
	return gpu.Kernel{Name: code + ".init", Warps: ws}
}

// buildKernel assembles one launch: every warp walks its chunk of the
// read sequence once per pass (rotating chunks across passes so reuse
// lands in the L2, not the flash-invalidated L1s), interleaving the
// profile's scratchpad staging and arithmetic, then performs its share
// of the writes.
func buildKernel(p profile, in Input, k, passes int, readLines, outLines []memsys.Addr) gpu.Kernel {
	warps := p.warps
	if warps == 0 {
		warps = autoWarps(len(readLines))
	}
	chunks := trace.Chunk(readLines, warps)
	outChunks := trace.Chunk(outLines, warps)
	sharedOps := p.sharedOpsPerLine[in]
	gap := p.computePerLine[in]

	// Per-read-line op footprint, for exact preallocation: the load
	// itself, the scratchpad staging ops, and the trailing compute gap.
	perLine := 1
	if p.stage {
		perLine += sharedOps
	}
	if gap > 0 {
		perLine++
	}

	ws := make([]gpu.Warp, 0, warps)
	for wi := 0; wi < warps; wi++ {
		nops := 0
		for pass := 0; pass < passes; pass++ {
			nops += len(chunks[(wi+pass)%warps]) * perLine
		}
		switch {
		case len(outLines) > 0:
			nops += len(outChunks[wi])
		case p.writeFrac > 0:
			nops += len(chunks[wi]) * p.writeFrac / 256
		}
		ops := make([]gpu.WarpOp, 0, nops)
		for pass := 0; pass < passes; pass++ {
			chunk := chunks[(wi+pass)%warps]
			for _, a := range chunk {
				ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalLoad, Addr: a, Lines: 1})
				if p.stage {
					for s := 0; s < sharedOps; s++ {
						ops = append(ops, gpu.WarpOp{Kind: gpu.OpShared})
					}
				}
				if gap > 0 {
					ops = append(ops, gpu.WarpOp{Kind: gpu.OpCompute, Gap: gap})
				}
			}
		}
		switch {
		case len(outLines) > 0:
			for _, a := range outChunks[wi] {
				ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalStore, Addr: a, Lines: 1})
			}
		case p.writeFrac > 0:
			// In-place updates over a slice of this warp's chunk.
			chunk := chunks[wi]
			n := len(chunk) * p.writeFrac / 256
			for i := 0; i < n; i++ {
				ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalStore, Addr: chunk[i], Lines: 1})
			}
		}
		ws = append(ws, gpu.Warp{Ops: ops})
	}
	return gpu.Kernel{Name: fmt.Sprintf("%s.k%d", p.code, k), Warps: ws}
}

// Run executes the workload's phases in order and returns total ticks.
func (w *Workload) Run(sys *core.System) sim.Tick {
	t, _ := w.RunPhases(sys)
	return t
}

// RunPhases executes the workload and additionally returns per-phase
// tick counts (produce/kernels/readback), for analysis output.
func (w *Workload) RunPhases(sys *core.System) (sim.Tick, []sim.Tick) {
	t, per, _ := w.RunPhasesContext(context.Background(), sys)
	return t, per
}

// RunPhasesContext is RunPhases under a context: cancellation abandons
// the workload between or inside phases, returning the ticks and
// completed-phase counts accumulated so far along with ctx's error. A
// cancelled system is torn mid-transaction and must be discarded.
func (w *Workload) RunPhasesContext(ctx context.Context, sys *core.System) (sim.Tick, []sim.Tick, error) {
	start := sys.Now()
	per, err := w.RunPhaseRangeContext(ctx, sys, 0, len(w.phases))
	return sys.Now() - start, per, err
}

// RunPhaseRangeContext executes phases [lo, hi) in order, returning
// per-phase tick counts for the range. It is the resume entry point
// for snapshot-restored systems: a system restored from a snapshot
// taken after phase k continues with lo = k+1, and the resulting
// event sequence is byte-identical to a run that never stopped
// (phase boundaries are quiescent — the engine is fully drained — so
// no in-flight state spans them).
func (w *Workload) RunPhaseRangeContext(ctx context.Context, sys *core.System, lo, hi int) ([]sim.Tick, error) {
	var per []sim.Tick
	for _, ph := range w.phases[lo:hi] {
		if err := ctx.Err(); err != nil {
			return per, err
		}
		p0 := sys.Now()
		var err error
		if ph.kernel != nil {
			_, err = sys.RunKernelContext(ctx, *ph.kernel)
		} else {
			_, err = sys.RunCPUContext(ctx, ph.ops)
		}
		if err != nil {
			return per, err
		}
		per = append(per, sys.Now()-p0)
	}
	return per, nil
}
