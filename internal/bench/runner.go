package bench

import (
	"context"
	"fmt"

	"dstore/internal/core"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Result captures one benchmark run.
type Result struct {
	Code string
	Mode core.Mode
	In   Input
	// Ticks is total execution time (produce + kernels + readback).
	Ticks sim.Tick
	// GPU L2 aggregate demand behaviour (Fig. 5's metric).
	L2Accesses uint64
	L2Misses   uint64
	MissRate   float64
	// Pushes received by the GPU L2 (direct-store installs).
	Pushes uint64
	// Network traffic split.
	XbarBytes   uint64
	DirectBytes uint64
	// PhaseTicks breaks Ticks down: produce, each kernel, readback.
	PhaseTicks []sim.Tick
}

// Run executes one benchmark under the default Table I configuration
// for the given mode.
func Run(code string, mode core.Mode, in Input) (Result, error) {
	return RunWithConfig(code, core.DefaultConfig(mode), in)
}

// RunWithConfig executes one benchmark under an explicit configuration.
func RunWithConfig(code string, cfg core.Config, in Input) (Result, error) {
	return RunWithConfigContext(context.Background(), code, cfg, in)
}

// RunWithConfigContext is RunWithConfig under a context: cancellation
// abandons the simulation mid-flight and returns ctx's error. Each run
// builds a private system, so an abandoned run leaks nothing into later
// ones, and an uncancelled run is event-for-event identical to
// RunWithConfig.
func RunWithConfigContext(ctx context.Context, code string, cfg core.Config, in Input) (Result, error) {
	r, _, err := RunWithConfigTimedContext(ctx, code, cfg, in, nil)
	return r, err
}

// HostPhases breaks one run's host-side wall time into the phases a
// -timing report shows: building the system and workload, driving the
// simulation, and assembling the result. Units are whatever the clock
// counts — nanoseconds for the time.Now-backed clock cmd/dstore-bench
// injects. Host timing never feeds back into the simulation, so the
// Result is identical whatever the clock reads.
type HostPhases struct {
	SetupNS  uint64
	RunNS    uint64
	ReportNS uint64
}

// Total returns the summed phase time.
func (h HostPhases) Total() uint64 { return h.SetupNS + h.RunNS + h.ReportNS }

// Add accumulates other into h (for summing a comparison's two runs).
func (h HostPhases) Add(other HostPhases) HostPhases {
	return HostPhases{
		SetupNS:  h.SetupNS + other.SetupNS,
		RunNS:    h.RunNS + other.RunNS,
		ReportNS: h.ReportNS + other.ReportNS,
	}
}

// RunWithConfigTimedContext is RunWithConfigContext with a host-side
// phase breakdown measured by clock (nil clock reports zeros). The
// simulated Result is byte-identical to RunWithConfigContext's.
func RunWithConfigTimedContext(ctx context.Context, code string, cfg core.Config, in Input, clock obs.Clock) (Result, HostPhases, error) {
	if clock == nil {
		clock = func() uint64 { return 0 }
	}
	var hp HostPhases
	t0 := clock()
	sys := core.NewSystem(cfg)
	w, err := Build(sys, code, in)
	hp.SetupNS = clock() - t0
	if err != nil {
		return Result{}, hp, err
	}
	t1 := clock()
	ticks, phases, err := w.RunPhasesContext(ctx, sys)
	hp.RunNS = clock() - t1
	if err != nil {
		return Result{}, hp, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
	}
	t2 := clock()
	if err := sys.CheckCoherence(); err != nil {
		hp.ReportNS = clock() - t2
		return Result{}, hp, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
	}
	// Seal the observer's final sampling window at the run's end tick so
	// time-series exports cover the whole run. A nil observer ignores it.
	cfg.Obs.FinishRun(sys.Now())
	res := Result{
		Code: code, Mode: cfg.Mode, In: in,
		Ticks:       ticks,
		PhaseTicks:  phases,
		L2Accesses:  sys.GPUL2Accesses(),
		L2Misses:    sys.GPUL2Misses(),
		MissRate:    sys.GPUL2MissRate(),
		Pushes:      sys.PushesReceived(),
		XbarBytes:   sys.CoherenceTrafficBytes(),
		DirectBytes: sys.DirectTrafficBytes(),
	}
	hp.ReportNS = clock() - t2
	return res, hp, nil
}

// Comparison holds a CCSM-vs-direct-store pair for one benchmark and
// input.
type Comparison struct {
	Code string
	In   Input
	CCSM Result
	DS   Result
}

// Speedup returns direct store's speedup over CCSM: the paper
// normalises direct store's total ticks to CCSM's (Fig. 4), so 0.05
// means 5% faster.
func (c Comparison) Speedup() float64 {
	if c.DS.Ticks == 0 {
		return 0
	}
	return float64(c.CCSM.Ticks)/float64(c.DS.Ticks) - 1
}

// MissRateDelta returns CCSM miss rate minus DS miss rate (positive =
// reduction under direct store).
func (c Comparison) MissRateDelta() float64 {
	return c.CCSM.MissRate - c.DS.MissRate
}

// Compare runs one benchmark under both modes.
func Compare(code string, in Input) (Comparison, error) {
	return CompareWithConfigs(code, in, core.DefaultConfig(core.ModeCCSM), core.DefaultConfig(core.ModeDirectStore))
}

// CompareWithConfigs runs one benchmark under two explicit
// configurations (baseline first).
func CompareWithConfigs(code string, in Input, base, ds core.Config) (Comparison, error) {
	return CompareWithConfigsContext(context.Background(), code, in, base, ds)
}

// CompareWithConfigsContext is CompareWithConfigs under a context.
func CompareWithConfigsContext(ctx context.Context, code string, in Input, base, ds core.Config) (Comparison, error) {
	c, _, err := CompareWithConfigsTimedContext(ctx, code, in, base, ds, nil)
	return c, err
}

// CompareWithConfigsTimedContext is CompareWithConfigsContext with a
// host phase breakdown summed over the pair's two runs.
func CompareWithConfigsTimedContext(ctx context.Context, code string, in Input, base, ds core.Config, clock obs.Clock) (Comparison, HostPhases, error) {
	c := Comparison{Code: code, In: in}
	var hp, h HostPhases
	var err error
	if c.CCSM, h, err = RunWithConfigTimedContext(ctx, code, base, in, clock); err != nil {
		return c, hp.Add(h), err
	}
	hp = hp.Add(h)
	if c.DS, h, err = RunWithConfigTimedContext(ctx, code, ds, in, clock); err != nil {
		return c, hp.Add(h), err
	}
	return c, hp.Add(h), nil
}

// RunAll compares every Table II benchmark for one input size,
// sequentially. Every benchmark is attempted even if one fails; failures
// are aggregated into a *SweepError so one broken profile cannot hide
// the other results. Use RunAllParallel to spread the sweep across
// cores.
func RunAll(in Input) ([]Comparison, error) {
	return RunAllParallel(in, SweepOptions{Workers: 1})
}

// speedupThreshold is the rounding floor below which the paper plots a
// benchmark as "zero percent speedup".
const speedupThreshold = 0.005

// GeomeanSpeedup returns the geometric mean of the non-zero speedups
// (the rightmost bar of Fig. 4): benchmarks whose speedup rounds to
// zero are excluded, matching the paper's method.
func GeomeanSpeedup(cs []Comparison) float64 {
	var ratios []float64
	for _, c := range cs {
		if s := c.Speedup(); s >= speedupThreshold {
			ratios = append(ratios, 1+s)
		}
	}
	m, ok := stats.GeoMeanNonZero(ratios)
	if !ok {
		return 0
	}
	return m - 1
}

// GeomeanMissRates returns the geometric means of the non-zero GPU L2
// miss rates under CCSM and direct store (the rightmost bars of
// Fig. 5).
func GeomeanMissRates(cs []Comparison) (ccsm, ds float64) {
	var a, b []float64
	for _, c := range cs {
		a = append(a, c.CCSM.MissRate)
		b = append(b, c.DS.MissRate)
	}
	ccsm, _ = stats.GeoMeanNonZero(a)
	ds, _ = stats.GeoMeanNonZero(b)
	return ccsm, ds
}

// Fig4Table renders the Fig. 4 speedup series for one input size.
func Fig4Table(in Input, cs []Comparison) *stats.Table {
	t := stats.NewTable("Benchmark", "CCSM ticks", "DS ticks", "Speedup")
	for _, c := range cs {
		t.AddRow(c.Code,
			fmt.Sprintf("%d", c.CCSM.Ticks),
			fmt.Sprintf("%d", c.DS.Ticks),
			stats.Percent(c.Speedup()))
	}
	t.AddRow("GEOMEAN(nonzero)", "", "", stats.Percent(GeomeanSpeedup(cs)))
	return t
}

// Fig5Table renders the Fig. 5 GPU L2 miss-rate series for one input
// size.
func Fig5Table(in Input, cs []Comparison) *stats.Table {
	t := stats.NewTable("Benchmark", "CCSM accesses", "CCSM miss rate", "DS accesses", "DS miss rate")
	for _, c := range cs {
		t.AddRow(c.Code,
			fmt.Sprintf("%d", c.CCSM.L2Accesses),
			stats.Percent(c.CCSM.MissRate),
			fmt.Sprintf("%d", c.DS.L2Accesses),
			stats.Percent(c.DS.MissRate))
	}
	gm1, gm2 := GeomeanMissRates(cs)
	t.AddRow("GEOMEAN", "", stats.Percent(gm1), "", stats.Percent(gm2))
	return t
}

// Table2 renders the paper's benchmark table.
func Table2() *stats.Table {
	t := stats.NewTable("Name", "Small input", "Big input", "Suite", "Shared")
	for _, p := range profiles {
		sh := "No"
		if p.shared {
			sh = "Yes"
		}
		t.AddRow(p.code, p.small, p.big, p.suite, sh)
	}
	return t
}
