package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dstore/internal/core"
	"dstore/internal/obs"
)

var updateTraces = flag.Bool("update", false, "rewrite golden trace fixtures from current simulator output")

// fullObs returns an observer with every subsystem enabled, sized so
// the golden fixtures stay reviewable.
func fullObs() *obs.Observer {
	return obs.New(obs.Options{Trace: true, TraceCap: 256, Hist: true, TimeSeries: true, Epoch: 10_000})
}

// TestResultsIdenticalWithTracing is the acceptance guard for the
// observability layer's zero-interference contract: a run with every
// observer subsystem enabled must produce a Result byte-identical to
// the same run with no observer at all.
func TestResultsIdenticalWithTracing(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCCSM, core.ModeDirectStore} {
		plain, err := Run("MT", mode, Small)
		if err != nil {
			t.Fatalf("plain run (%s): %v", mode, err)
		}
		cfg := core.DefaultConfig(mode)
		cfg.Obs = fullObs()
		traced, err := RunWithConfig("MT", cfg, Small)
		if err != nil {
			t.Fatalf("traced run (%s): %v", mode, err)
		}
		a, _ := json.Marshal(plain)
		b, _ := json.Marshal(traced)
		if !bytes.Equal(a, b) {
			t.Errorf("tracing changed the %s result:\n  off: %s\n   on: %s", mode, a, b)
		}
		if cfg.Obs.Events() == nil {
			t.Errorf("%s: traced run recorded no events", mode)
		}
	}
}

// TestGoldenTraces pins the Chrome trace bytes for the MT/small pair —
// heap (CCSM) against direct store — against fixtures under testdata/.
// Any event reordering, timestamp drift or schema change shows up as a
// byte diff. Regenerate deliberately with:
//
//	go test ./internal/bench -run GoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, tc := range []struct {
		mode core.Mode
		file string
	}{
		{core.ModeCCSM, "trace_mt_small_ccsm.json"},
		{core.ModeDirectStore, "trace_mt_small_ds.json"},
	} {
		cfg := core.DefaultConfig(tc.mode)
		cfg.Obs = fullObs()
		if _, err := RunWithConfig("MT", cfg, Small); err != nil {
			t.Fatalf("MT/%s: %v", tc.mode, err)
		}
		var got bytes.Buffer
		if err := cfg.Obs.WriteTrace(&got); err != nil {
			t.Fatalf("WriteTrace (%s): %v", tc.mode, err)
		}
		// The fixture must round-trip through encoding/json: Perfetto and
		// chrome://tracing both parse it as one JSON object.
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(got.Bytes(), &parsed); err != nil {
			t.Fatalf("trace is not valid JSON (%s): %v", tc.mode, err)
		}
		if len(parsed.TraceEvents) == 0 {
			t.Fatalf("trace has no events (%s)", tc.mode)
		}
		path := filepath.Join("testdata", tc.file)
		if *updateTraces {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d events)", path, len(parsed.TraceEvents))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s drifted from golden fixture %s (%d vs %d bytes); regenerate with -update if intended",
				tc.mode, path, got.Len(), len(want))
		}
	}
}

// TestTraceIdenticalAcrossWorkers runs the same two-job sweep at one
// worker and at eight, each job carrying its own observers, and wants
// the serialized traces byte-identical: worker scheduling must never
// leak into what a run observes.
func TestTraceIdenticalAcrossWorkers(t *testing.T) {
	sweep := func(workers int) [][]byte {
		jobs := []SweepJob{
			{Code: "MT", In: Small, Base: core.DefaultConfig(core.ModeCCSM), DS: core.DefaultConfig(core.ModeDirectStore)},
			{Code: "VA", In: Small, Base: core.DefaultConfig(core.ModeCCSM), DS: core.DefaultConfig(core.ModeDirectStore)},
		}
		var observers []*obs.Observer
		for i := range jobs {
			jobs[i].Base.Obs = fullObs()
			jobs[i].DS.Obs = fullObs()
			observers = append(observers, jobs[i].Base.Obs, jobs[i].DS.Obs)
		}
		if _, err := SweepWithConfigs(jobs, SweepOptions{Workers: workers}); err != nil {
			t.Fatalf("sweep (workers=%d): %v", workers, err)
		}
		var out [][]byte
		for _, o := range observers {
			var buf bytes.Buffer
			if err := o.WriteTrace(&buf); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			out = append(out, buf.Bytes())
		}
		return out
	}
	one := sweep(1)
	eight := sweep(8)
	for i := range one {
		if !bytes.Equal(one[i], eight[i]) {
			t.Errorf("trace %d differs between workers=1 and workers=8 (%d vs %d bytes)",
				i, len(one[i]), len(eight[i]))
		}
	}
}

// TestPushToUseHistogramShift checks the headline observability claim
// on a streaming benchmark: under direct store the CPU pushes lines
// into the GPU L2 before the kernel reads them, so the GPU load-latency
// distribution shifts left against the heap baseline and the
// push-to-first-use histogram actually populates.
func TestPushToUseHistogramShift(t *testing.T) {
	means := make(map[core.Mode]float64)
	var pushHist *obs.Histogram
	for _, mode := range []core.Mode{core.ModeCCSM, core.ModeDirectStore} {
		cfg := core.DefaultConfig(mode)
		cfg.Obs = obs.New(obs.Options{Hist: true})
		if _, err := RunWithConfig("NN", cfg, Small); err != nil {
			t.Fatalf("NN/%s: %v", mode, err)
		}
		h := cfg.Obs.Hist(obs.HistGPULoadLat)
		if h.Count() == 0 {
			t.Fatalf("NN/%s: empty GPU load-latency histogram", mode)
		}
		means[mode] = h.Mean()
		if mode == core.ModeDirectStore {
			pushHist = cfg.Obs.Hist(obs.HistPushToUse)
		}
	}
	if means[core.ModeDirectStore] >= means[core.ModeCCSM] {
		t.Errorf("direct store did not lower mean GPU load latency: DS %.1f vs CCSM %.1f",
			means[core.ModeDirectStore], means[core.ModeCCSM])
	}
	if pushHist.Count() == 0 {
		t.Error("direct-store run recorded no push-to-first-use samples")
	}
}

// TestTimedRunPhases checks the host phase clock plumbing: a counting
// clock yields monotone non-zero phases, and the timed variant's Result
// matches the untimed one exactly.
func TestTimedRunPhases(t *testing.T) {
	var fake uint64
	clock := func() uint64 { fake += 7; return fake }
	timed, hp, err := RunWithConfigTimedContext(context.Background(), "MT", core.DefaultConfig(core.ModeCCSM), Small, clock)
	if err != nil {
		t.Fatal(err)
	}
	if hp.SetupNS == 0 || hp.RunNS == 0 || hp.ReportNS == 0 {
		t.Errorf("phase breakdown has zero phases: %+v", hp)
	}
	if hp.Total() != hp.SetupNS+hp.RunNS+hp.ReportNS {
		t.Errorf("Total mismatch: %+v", hp)
	}
	plain, err := Run("MT", core.ModeCCSM, Small)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(timed)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Errorf("timed run diverged from plain run:\n timed: %s\n plain: %s", a, b)
	}

	// Sweep-level timings arrive per job, in job order.
	jobs := StandardJobs(Small)[:2]
	_, timings, err := SweepWithTimingsContext(context.Background(), jobs, SweepOptions{Workers: 1, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(jobs) {
		t.Fatalf("got %d timings for %d jobs", len(timings), len(jobs))
	}
	for i, tm := range timings {
		if tm.Total() == 0 {
			t.Errorf("job %d: zero host time", i)
		}
	}
}
