package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"dstore/internal/core"
)

// TestRunWithConfigContextPreCancelled checks a dead context aborts
// before any phase runs.
func TestRunWithConfigContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWithConfigContext(ctx, "MT", core.DefaultConfig(core.ModeCCSM), Small)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWithConfigContextMidFlight cancels a long simulation shortly
// after it starts; the run must abort well before completing and
// report the cancellation.
func TestRunWithConfigContextMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// ST/big runs for seconds; cancellation lands mid-kernel.
		_, err := RunWithConfigContext(ctx, "ST", core.DefaultConfig(core.ModeCCSM), Big)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return within 30s")
	}
}

// TestRunWithConfigContextBackgroundIdentical checks the context entry
// point with an uncancellable context reproduces RunWithConfig's
// result exactly (the byte-identical-output property the sweep layer
// depends on).
func TestRunWithConfigContextBackgroundIdentical(t *testing.T) {
	want, err := RunWithConfig("NN", core.DefaultConfig(core.ModeDirectStore), Small)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWithConfigContext(context.Background(), "NN", core.DefaultConfig(core.ModeDirectStore), Small)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ticks != want.Ticks || got.L2Accesses != want.L2Accesses ||
		got.L2Misses != want.L2Misses || got.Pushes != want.Pushes ||
		got.XbarBytes != want.XbarBytes || got.DirectBytes != want.DirectBytes {
		t.Fatalf("context run diverged from plain run:\n got %+v\nwant %+v", got, want)
	}
}

// TestSweepWithConfigsContextCancelled checks a cancelled sweep
// reports every job as failed with the context error and still returns
// a result slice of the right shape.
func TestSweepWithConfigsContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := StandardJobs(Small)[:4]
	results, err := SweepWithConfigsContext(ctx, jobs, SweepOptions{Workers: 2})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *SweepError", err, err)
	}
	if len(se.Failures) != len(jobs) {
		t.Fatalf("%d failures, want %d: %v", len(se.Failures), len(jobs), se)
	}
	for _, f := range se.Failures {
		if !errors.Is(f.Err, context.Canceled) {
			t.Fatalf("failure %v, want context.Canceled", f.Err)
		}
	}
}
