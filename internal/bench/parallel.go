package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dstore/internal/core"
	"dstore/internal/obs"
)

// SweepJob names one CCSM-vs-direct-store comparison inside a sweep: a
// benchmark code, an input size and the two configurations to compare.
type SweepJob struct {
	Code string
	In   Input
	// Base is the baseline (normally CCSM) configuration; DS is the
	// configuration whose speedup over Base is reported.
	Base core.Config
	DS   core.Config
}

// StandardJobs returns the full Table II sweep for one input size under
// the default configurations — the job list behind RunAll.
func StandardJobs(in Input) []SweepJob {
	codes := Codes()
	jobs := make([]SweepJob, len(codes))
	for i, code := range codes {
		jobs[i] = SweepJob{
			Code: code, In: in,
			Base: core.DefaultConfig(core.ModeCCSM),
			DS:   core.DefaultConfig(core.ModeDirectStore),
		}
	}
	return jobs
}

// SweepOptions configures a sweep run.
type SweepOptions struct {
	// Workers is the number of benchmarks compared concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0). One runs the jobs strictly
	// sequentially on the calling goroutine, recovering the historical
	// behaviour exactly.
	Workers int
	// Clock, if set, measures host-side phase time for
	// SweepWithTimingsContext (cmd/dstore-bench injects a time.Now-backed
	// clock). Host timing never reaches the simulation, so results are
	// identical with or without it.
	Clock obs.Clock
}

func (o SweepOptions) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JobError records one failed sweep job. Index is the job's position in
// the submitted slice (and therefore in the result slice).
type JobError struct {
	Index int
	Code  string
	In    Input
	Err   error
}

func (e JobError) Error() string {
	return fmt.Sprintf("bench %s (%s): %v", e.Code, e.In, e.Err)
}

func (e JobError) Unwrap() error { return e.Err }

// SweepError aggregates every failure from a sweep in job order. A sweep
// always attempts all jobs: one broken benchmark cannot hide the results
// of the others. The result slice positions named by Failures hold
// whatever partial data the failed comparison produced.
type SweepError struct {
	Failures []JobError
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of sweep jobs failed:", len(e.Failures))
	for _, f := range e.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// FailedIndices returns the set of result-slice positions that failed.
func (e *SweepError) FailedIndices() map[int]bool {
	m := make(map[int]bool, len(e.Failures))
	for _, f := range e.Failures {
		m[f.Index] = true
	}
	return m
}

// SweepWithConfigs runs every job and returns one Comparison per job, in
// job order regardless of completion order. Each job builds its own
// core.System and sim.Engine, so runs are fully independent and results
// are identical whatever the worker count. If any job fails, the error
// is a *SweepError listing every failure; successful entries in the
// result slice are still valid.
func SweepWithConfigs(jobs []SweepJob, opt SweepOptions) ([]Comparison, error) {
	return SweepWithConfigsContext(context.Background(), jobs, opt)
}

// SweepWithConfigsContext is SweepWithConfigs under a context. On
// cancellation, in-flight comparisons are abandoned mid-simulation and
// not-yet-started jobs are skipped; both are reported in the
// *SweepError as failures carrying ctx's error. With an uncancelled
// context the results are byte-identical to SweepWithConfigs for any
// worker count.
func SweepWithConfigsContext(ctx context.Context, jobs []SweepJob, opt SweepOptions) ([]Comparison, error) {
	results, _, err := SweepWithTimingsContext(ctx, jobs, opt)
	return results, err
}

// SweepWithTimingsContext is SweepWithConfigsContext returning, in
// addition, each job's host-side phase breakdown (setup/run/report,
// both runs of the pair summed) as measured by opt.Clock. A nil clock
// reports zeros. The Comparison slice is byte-identical to
// SweepWithConfigsContext's for any worker count.
func SweepWithTimingsContext(ctx context.Context, jobs []SweepJob, opt SweepOptions) ([]Comparison, []HostPhases, error) {
	results := make([]Comparison, len(jobs))
	timings := make([]HostPhases, len(jobs))
	errs := make([]error, len(jobs))

	runJob := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		results[i], timings[i], errs[i] = CompareWithConfigsTimedContext(ctx, jobs[i].Code, jobs[i].In, jobs[i].Base, jobs[i].DS, opt.Clock)
	}

	if w := opt.workers(len(jobs)); w == 1 {
		for i := range jobs {
			runJob(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runJob(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var sweepErr *SweepError
	for i, err := range errs {
		if err != nil {
			if sweepErr == nil {
				sweepErr = &SweepError{}
			}
			sweepErr.Failures = append(sweepErr.Failures,
				JobError{Index: i, Code: jobs[i].Code, In: jobs[i].In, Err: err})
		}
	}
	if sweepErr != nil {
		return results, timings, sweepErr
	}
	return results, timings, nil
}

// RunAllParallel compares every Table II benchmark for one input size
// using opt.Workers concurrent runs. The results are identical to
// RunAll's, in the same Table II order.
func RunAllParallel(in Input, opt SweepOptions) ([]Comparison, error) {
	return SweepWithConfigs(StandardJobs(in), opt)
}

// RunAllParallelContext is RunAllParallel under a context, with
// SweepWithConfigsContext's cancellation contract.
func RunAllParallelContext(ctx context.Context, in Input, opt SweepOptions) ([]Comparison, error) {
	return SweepWithConfigsContext(ctx, StandardJobs(in), opt)
}
