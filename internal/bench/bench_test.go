package bench

import (
	"strings"
	"testing"

	"dstore/internal/core"
)

func TestRegistryMatchesTable2(t *testing.T) {
	codes := Codes()
	if len(codes) != 22 {
		t.Fatalf("registry has %d benchmarks, Table II has 22", len(codes))
	}
	want := []string{"BP", "BF", "GA", "HT", "KM", "LV", "LU", "NN", "NW", "PT",
		"SR", "ST", "GC", "FW", "MS", "SP", "BL", "VA", "BS", "MM", "MT", "CH"}
	for i, w := range want {
		if codes[i] != w {
			t.Fatalf("code %d = %s, want %s (Table II order)", i, codes[i], w)
		}
	}
}

func TestTable2SharedColumn(t *testing.T) {
	// Table II: BP GA HT KM LV LU NW PT SR ST use shared memory; the
	// rest do not.
	shared := map[string]bool{"BP": true, "GA": true, "HT": true, "KM": true,
		"LV": true, "LU": true, "NW": true, "PT": true, "SR": true, "ST": true}
	for _, p := range profiles {
		if p.shared != shared[p.code] {
			t.Errorf("%s shared = %v, Table II says %v", p.code, p.shared, shared[p.code])
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"BP", "1536", "10000", "Rodinia", "Parboil", "Pannotia",
		"NVIDIA SDK", "delaunay-n15", "524288", "1600x1600"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestBuildUnknownBenchmark(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig(core.ModeCCSM))
	if _, err := Build(sys, "XX", Small); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWorkloadStructure(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig(core.ModeCCSM))
	w, err := Build(sys, "BP", Small)
	if err != nil {
		t.Fatal(err)
	}
	// produce + 1 kernel (kernels=1, but BP has kernels... ) + readback
	p, _ := find("BP")
	want := 1 + p.kernels + 1
	if w.Phases() != want {
		t.Errorf("BP has %d phases, want %d", w.Phases(), want)
	}
	if w.Code != "BP" || w.In != Small {
		t.Error("workload identity wrong")
	}
}

func TestPTSelfInitialises(t *testing.T) {
	// PT's CPU produces nothing for the GPU: phase 1 must be a kernel,
	// and the run must be bit-identical across modes.
	sys := core.NewSystem(core.DefaultConfig(core.ModeCCSM))
	w, err := Build(sys, "PT", Small)
	if err != nil {
		t.Fatal(err)
	}
	if w.phases[0].kernel == nil {
		t.Error("PT phase 1 is not a GPU init kernel")
	}
	c, err := Compare("PT", Small)
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup() != 0 {
		t.Errorf("PT speedup %v, want exactly 0 (CPU produces no GPU data)", c.Speedup())
	}
	if c.DS.Pushes != 0 {
		t.Errorf("PT pushed %d lines, want 0", c.DS.Pushes)
	}
}

func TestNNIsTheHeadlineWinner(t *testing.T) {
	c, err := Compare("NN", Small)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Speedup(); s < 0.25 || s > 0.5 {
		t.Errorf("NN small speedup %.1f%%, want in the paper's headline range (25-50%%)", s*100)
	}
	if c.DS.MissRate >= c.CCSM.MissRate {
		t.Error("NN miss rate not reduced under direct store")
	}
	if c.DS.Pushes == 0 {
		t.Error("NN pushed nothing")
	}
}

func TestDirectStoreNeverSlowsMeaningfully(t *testing.T) {
	// The paper: "converting programs to use direct store never hurts
	// performance". Allow a ±1% simulation-noise band on a fast subset.
	for _, code := range []string{"BP", "HT", "LV", "PT", "BL", "MT", "SP", "GC"} {
		c, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		if c.Speedup() < -0.01 {
			t.Errorf("%s small slows down by %.1f%% under direct store", code, -c.Speedup()*100)
		}
	}
}

func TestSharedMemoryBenchmarksGainLittleSmall(t *testing.T) {
	// Fig. 4 discussion: KM and LV use shared memory heavily and show
	// no speedup for small inputs.
	for _, code := range []string{"KM", "LV"} {
		c, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Speedup(); s > 0.02 {
			t.Errorf("%s small speedup %.1f%%, want ~0 (shared-memory benchmark)", code, s*100)
		}
		if c.MissRateDelta() <= 0 {
			t.Errorf("%s shows no miss-rate reduction despite using the L2 for staging", code)
		}
	}
}

func TestStreamingBenchmarksGainBigSmall(t *testing.T) {
	// NN, BL, VA, MM, MT are the >10% club for small inputs (MT lands
	// just under in this reproduction; hold it to >5%).
	for _, code := range []string{"BL", "VA", "MM"} {
		c, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Speedup(); s < 0.10 {
			t.Errorf("%s small speedup %.1f%%, want >10%%", code, s*100)
		}
	}
	c, err := Compare("MT", Small)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Speedup(); s < 0.05 {
		t.Errorf("MT small speedup %.1f%%, want >5%%", s*100)
	}
}

func TestBigInputShrinksStreamingGains(t *testing.T) {
	// §IV-C: for NN, BL, VA, MM the big-input speedup is smaller than
	// small-input (working set exceeds the 2MB GPU L2).
	for _, code := range []string{"BL", "VA"} {
		small, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Compare(code, Big)
		if err != nil {
			t.Fatal(err)
		}
		if big.Speedup() >= small.Speedup() {
			t.Errorf("%s big speedup %.1f%% not below small %.1f%%",
				code, big.Speedup()*100, small.Speedup()*100)
		}
	}
}

func TestBigInputGrowsSharedMemoryGains(t *testing.T) {
	// §IV-C: BP and HT gain more on big inputs, where parallelism can
	// no longer hide the memory latency.
	for _, code := range []string{"BP", "LU"} {
		small, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Compare(code, Big)
		if err != nil {
			t.Fatal(err)
		}
		if big.Speedup() <= small.Speedup() {
			t.Errorf("%s big speedup %.1f%% not above small %.1f%%",
				code, big.Speedup()*100, small.Speedup()*100)
		}
	}
}

func TestMissRateNeverWorseOnQuickSubset(t *testing.T) {
	for _, code := range []string{"BP", "HT", "GC", "SP", "BL", "PT"} {
		c, err := Compare(code, Small)
		if err != nil {
			t.Fatal(err)
		}
		if c.DS.MissRate > c.CCSM.MissRate+1e-9 {
			t.Errorf("%s DS miss rate %.1f%% above CCSM %.1f%%",
				code, c.DS.MissRate*100, c.CCSM.MissRate*100)
		}
	}
}

func TestCoherenceTrafficReduced(t *testing.T) {
	// §III-A: direct store "reduces coherence traffic for providing the
	// data to the GPU".
	c, err := Compare("NN", Small)
	if err != nil {
		t.Fatal(err)
	}
	if c.DS.XbarBytes >= c.CCSM.XbarBytes {
		t.Errorf("DS crossbar bytes %d not below CCSM %d", c.DS.XbarBytes, c.CCSM.XbarBytes)
	}
	if c.DS.DirectBytes == 0 {
		t.Error("no traffic on the dedicated network")
	}
}

func TestGeomeanHelpers(t *testing.T) {
	cs := []Comparison{
		{CCSM: Result{Ticks: 110}, DS: Result{Ticks: 100}}, // +10%
		{CCSM: Result{Ticks: 100}, DS: Result{Ticks: 100}}, // 0 → excluded
		{CCSM: Result{Ticks: 120}, DS: Result{Ticks: 100}}, // +20%
	}
	g := GeomeanSpeedup(cs)
	if g < 0.14 || g > 0.16 {
		t.Errorf("geomean %.3f, want ~0.148 (zeros excluded)", g)
	}
	cs[0].CCSM.MissRate, cs[0].DS.MissRate = 0.4, 0.1
	cs[1].CCSM.MissRate, cs[1].DS.MissRate = 0.1, 0.1
	a, b := GeomeanMissRates(cs)
	if a <= b {
		t.Errorf("miss-rate geomeans %v vs %v, want CCSM > DS", a, b)
	}
}

func TestFigTablesRender(t *testing.T) {
	c, err := Compare("HT", Small)
	if err != nil {
		t.Fatal(err)
	}
	cs := []Comparison{c}
	f4 := Fig4Table(Small, cs).String()
	if !strings.Contains(f4, "HT") || !strings.Contains(f4, "GEOMEAN") {
		t.Errorf("Fig4 table malformed:\n%s", f4)
	}
	f5 := Fig5Table(Small, cs).String()
	if !strings.Contains(f5, "HT") || !strings.Contains(f5, "%") {
		t.Errorf("Fig5 table malformed:\n%s", f5)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run("GC", core.ModeDirectStore, Small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("GC", core.ModeDirectStore, Small)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.L2Misses != b.L2Misses || a.Pushes != b.Pushes {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestStandaloneModeMatchesDirectStoreDirection(t *testing.T) {
	ds, err := Compare("BL", Small)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := CompareWithConfigs("BL", Small,
		core.DefaultConfig(core.ModeCCSM), core.DefaultConfig(core.ModeStandalone))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Speedup() < 0 {
		t.Errorf("standalone mode slows BL down: %.1f%%", sa.Speedup()*100)
	}
	if sa.DS.Pushes != ds.DS.Pushes {
		t.Errorf("standalone pushes %d != direct-store pushes %d", sa.DS.Pushes, ds.DS.Pushes)
	}
}

func TestInputString(t *testing.T) {
	if Small.String() != "small" || Big.String() != "big" {
		t.Error("input names wrong")
	}
}
