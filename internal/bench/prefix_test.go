package bench

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dstore/internal/core"
)

// mapStore is a trivial SnapshotStore for tests.
type mapStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts int
	gets int
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if ok {
		s.gets++
	}
	return b, ok
}

func (s *mapStore) Put(key string, snapshot []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), snapshot...)
	s.puts++
}

// TestSnapshotRoundTripGolden is the golden round-trip guarantee: a
// run resumed from a post-produce snapshot produces a byte-identical
// Result to the uninterrupted run, across benchmarks, modes and
// configurations.
func TestSnapshotRoundTripGolden(t *testing.T) {
	cases := []struct {
		code string
		mode core.Mode
		tune func(*core.Config)
	}{
		{"MM", core.ModeDirectStore, nil},
		{"MM", core.ModeCCSM, nil},
		{"BF", core.ModeDirectStore, nil},
		{"NW", core.ModeCCSM, func(c *core.Config) { c.GPUL2Policy = "srrip" }},
		{"MM", core.ModeDirectStore, func(c *core.Config) { c.NoC = "ring" }},
		{"MM", core.ModeDirectStore, func(c *core.Config) { c.RegionDirectory = true }},
	}
	for _, tc := range cases {
		cfg := core.DefaultConfig(tc.mode)
		if tc.tune != nil {
			tc.tune(&cfg)
		}
		name := tc.code + "/" + tc.mode.String()

		cold, err := RunWithConfig(tc.code, cfg, Small)
		if err != nil {
			t.Fatalf("%s: cold run: %v", name, err)
		}

		store := newMapStore()
		first, hit, err := RunWithSnapshotContext(context.Background(), tc.code, cfg, Small, store)
		if err != nil {
			t.Fatalf("%s: first memoized run: %v", name, err)
		}
		if hit {
			t.Fatalf("%s: first run reported a snapshot hit", name)
		}
		if store.puts != 1 {
			t.Fatalf("%s: first run stored %d snapshots, want 1", name, store.puts)
		}
		if !reflect.DeepEqual(cold, first) {
			t.Fatalf("%s: cold-path memoized result diverged:\ncold: %+v\nmemo: %+v", name, cold, first)
		}

		warm, hit, err := RunWithSnapshotContext(context.Background(), tc.code, cfg, Small, store)
		if err != nil {
			t.Fatalf("%s: warm run: %v", name, err)
		}
		if !hit {
			t.Fatalf("%s: warm run did not restore from snapshot", name)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%s: resumed result diverged from uninterrupted run:\ncold: %+v\nwarm: %+v", name, cold, warm)
		}
	}
}

// TestSnapshotPrefixSharedAcrossGPUConfigs checks the point of the
// scheme: jobs differing only in GPU-pipeline knobs share one
// produce-prefix snapshot, and the restored runs still match their
// own uninterrupted twins exactly.
func TestSnapshotPrefixSharedAcrossGPUConfigs(t *testing.T) {
	base := core.DefaultConfig(core.ModeDirectStore)
	varied := base
	varied.SMs = 8
	varied.MaxWarpsPerSM = base.MaxWarpsPerSM / 2
	varied.GPUL1Bytes = base.GPUL1Bytes * 2

	kb, okb := PrefixKey("MM", base, Small)
	kv, okv := PrefixKey("MM", varied, Small)
	if !okb || !okv {
		t.Fatal("MM/small should be memoizable")
	}
	if kb != kv {
		t.Fatalf("GPU-pipeline-only config change altered the prefix key:\n%s\n%s", kb, kv)
	}
	if kd, _ := PrefixKey("MM", base, Big); kd == kb {
		t.Fatal("input change did not alter the prefix key")
	}
	slice := base
	slice.GPUL2Bytes = base.GPUL2Bytes / 2
	if ks, _ := PrefixKey("MM", slice, Small); ks == kb {
		t.Fatal("L2 slice geometry change did not alter the prefix key (slices participate in produce)")
	}

	store := newMapStore()
	if _, hit, err := RunWithSnapshotContext(context.Background(), "MM", base, Small, store); err != nil || hit {
		t.Fatalf("seed run: hit=%v err=%v", hit, err)
	}

	coldVaried, err := RunWithConfig("MM", varied, Small)
	if err != nil {
		t.Fatalf("cold varied run: %v", err)
	}
	warmVaried, hit, err := RunWithSnapshotContext(context.Background(), "MM", varied, Small, store)
	if err != nil {
		t.Fatalf("warm varied run: %v", err)
	}
	if !hit {
		t.Fatal("varied-GPU job did not reuse the shared produce prefix")
	}
	if !reflect.DeepEqual(coldVaried, warmVaried) {
		t.Fatalf("cross-config resume diverged:\ncold: %+v\nwarm: %+v", coldVaried, warmVaried)
	}
}

// TestSnapshotIneligible pins the bypass conditions: unknown phase
// structure (GPU-initialised benchmarks) and chaos runs never
// memoize.
func TestSnapshotIneligible(t *testing.T) {
	cfg := core.DefaultConfig(core.ModeDirectStore)
	for _, code := range Codes() {
		p, ok := find(code)
		if !ok {
			t.Fatalf("unknown code %s", code)
		}
		_, eligible := PrefixKey(code, cfg, Small)
		if eligible != p.cpuProduces {
			t.Errorf("%s: eligible=%v, cpuProduces=%v", code, eligible, p.cpuProduces)
		}
	}
	chaotic := cfg
	chaotic.Chaos = &core.ChaosConfig{}
	if _, ok := PrefixKey("MM", chaotic, Small); ok {
		t.Error("chaos run reported memoizable")
	}
}
