// Package bench models the paper's 22 benchmarks (Table II) as
// parameterised workloads over the simulated system, and provides the
// experiment runner that regenerates the evaluation figures.
//
// Each benchmark is reduced to the characteristics that drive the
// paper's results: how many bytes the CPU produces for the GPU, how the
// GPU walks that data (streaming, tiled, strided, irregular graph), how
// much scratchpad ("shared memory") staging and arithmetic hides
// memory latency, how many kernel launches and reuse passes occur, and
// whether results are updated in place or written to a separate output
// the CPU reads back. Footprints use the paper's real input sizes, so
// capacity effects against the 2MB GPU L2 appear where the paper says
// they do. Arithmetic-intensity knobs (compute per line, scratchpad ops
// per line) are calibration parameters; EXPERIMENTS.md documents them.
package bench

import (
	"dstore/internal/sim"
)

// Input selects the paper's small or big input size.
type Input int

// Input sizes (Table II columns).
const (
	Small Input = iota
	Big
)

// String names the input size.
func (in Input) String() string {
	if in == Big {
		return "big"
	}
	return "small"
}

// patternKind selects the GPU's walk over the shared data.
type patternKind uint8

const (
	patSequential patternKind = iota
	patStrided
	patTiled
	patGraph
)

// profile captures one benchmark's model parameters.
type profile struct {
	code   string
	name   string
	suite  string
	small  string // Table II input label
	big    string
	shared bool // Table II "Shared" column (uses GPU shared memory)

	// inBytes is the CPU-produced, GPU-consumed footprint.
	inBytes [2]uint64
	// outBytes is a separate GPU-written output (0 = in-place updates).
	outBytes [2]uint64
	// cpuProduces is false when the CPU does not store data the GPU
	// later uses (the paper's PT).
	cpuProduces bool
	// kernels is the number of sequential kernel launches.
	kernels int
	// passes is the number of full read passes over the input per
	// kernel (data reuse visible at the L2).
	passes [2]int
	// pattern is the read walk.
	pattern patternKind
	// strideLines for patStrided.
	strideLines int
	// graphNodes/graphDeg for patGraph (input bytes then derive from
	// the graph, inBytes is ignored as a footprint but used for the
	// produce phase sizing of node+edge arrays).
	graphNodes [2]int
	graphDeg   int
	// stage models shared-memory staging: each loaded line is followed
	// by scratchpad traffic instead of L2 re-reads.
	stage bool
	// sharedOpsPerLine is scratchpad work per staged line.
	sharedOpsPerLine [2]int
	// computePerLine is the arithmetic gap per loaded line, in ticks —
	// the latency-hiding knob.
	computePerLine [2]sim.Tick
	// produceGap is CPU compute per produced line (ticks): the host
	// work generating each line of input data.
	produceGap [2]sim.Tick
	// writeFrac is the fraction (per 256) of input lines the GPU
	// writes per kernel when in-place; for separate outputs the whole
	// output is written each kernel.
	writeFrac int
	// readback: the CPU reads the results after the kernels.
	readback bool
	// warps caps the number of warps per kernel (0 = auto).
	warps int
}

const kb = 1024
const mb = 1024 * 1024

// profiles is the Table II benchmark set. Footprints derive from the
// paper's input sizes; behavioural knobs are calibrated so the paper's
// qualitative outcomes emerge (see EXPERIMENTS.md for the mapping).
var profiles = []profile{
	{
		code: "BP", name: "backprop", suite: "Rodinia", small: "1536", big: "10000", shared: true,
		inBytes: [2]uint64{104 * kb, 680 * kb}, outBytes: [2]uint64{24 * kb, 160 * kb},
		cpuProduces: true, kernels: 2, passes: [2]int{1, 1}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{6, 6}, computePerLine: [2]sim.Tick{1835, 1280},
		warps: 384, readback: true,
		produceGap: [2]sim.Tick{1, 140},
	},
	{
		code: "BF", name: "bfs", suite: "Rodinia", small: "4096", big: "6000", shared: false,
		graphNodes: [2]int{4096, 6000}, graphDeg: 8, outBytes: [2]uint64{16 * kb, 24 * kb},
		cpuProduces: true, kernels: 2, passes: [2]int{1, 1}, pattern: patGraph,
		computePerLine: [2]sim.Tick{60, 60}, warps: 192, readback: true,
		produceGap: [2]sim.Tick{48, 80},
	},
	{
		code: "GA", name: "gaussian", suite: "Rodinia", small: "256x256", big: "700x700", shared: true,
		inBytes:     [2]uint64{256 * kb, 1916 * kb},
		cpuProduces: true, kernels: 4, passes: [2]int{2, 2}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{8, 8}, computePerLine: [2]sim.Tick{5000, 5000},
		writeFrac: 64, warps: 384, readback: true,
		produceGap: [2]sim.Tick{0, 200},
	},
	{
		code: "HT", name: "hotspot", suite: "Rodinia", small: "64x64", big: "512x512", shared: true,
		inBytes:     [2]uint64{32 * kb, 2 * mb},
		cpuProduces: true, kernels: 4, passes: [2]int{1, 1}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{8, 8}, computePerLine: [2]sim.Tick{1480, 1370},
		writeFrac: 128, warps: 384, readback: true,
		produceGap: [2]sim.Tick{19, 180},
	},
	{
		code: "KM", name: "kmeans", suite: "Rodinia", small: "2000, 34 feat", big: "5000, 34 feat.", shared: true,
		inBytes: [2]uint64{272 * kb, 680 * kb}, outBytes: [2]uint64{8 * kb, 20 * kb},
		cpuProduces: true, kernels: 3, passes: [2]int{2, 2}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{12, 12}, computePerLine: [2]sim.Tick{5000, 5000},
		warps: 384, readback: true,
	},
	{
		code: "LV", name: "lavaMD", suite: "Rodinia", small: "2", big: "4", shared: true,
		inBytes:     [2]uint64{32 * kb, 256 * kb},
		cpuProduces: true, kernels: 1, passes: [2]int{6, 6}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{16, 16}, computePerLine: [2]sim.Tick{5000, 5000},
		writeFrac: 64, warps: 384, readback: true,
	},
	{
		code: "LU", name: "lud", suite: "Rodinia", small: "256x256", big: "512x512", shared: true,
		inBytes:     [2]uint64{256 * kb, 1 * mb},
		cpuProduces: true, kernels: 4, passes: [2]int{1, 1}, pattern: patTiled,
		stage: true, sharedOpsPerLine: [2]int{6, 6}, computePerLine: [2]sim.Tick{1605, 1500},
		writeFrac: 128, warps: 384, readback: true,
		produceGap: [2]sim.Tick{185, 127},
	},
	{
		code: "NN", name: "nn", suite: "Rodinia", small: "10691", big: "42764", shared: false,
		inBytes: [2]uint64{10691 * 64, 42764 * 64}, outBytes: [2]uint64{4 * kb, 16 * kb},
		cpuProduces: true, kernels: 1, passes: [2]int{1, 1}, pattern: patSequential,
		computePerLine: [2]sim.Tick{4, 4},
		warps:          96, readback: true,
		produceGap: [2]sim.Tick{27, 51},
	},
	{
		code: "NW", name: "needle", suite: "Rodinia", small: "160x160", big: "320x320", shared: true,
		inBytes:     [2]uint64{205 * kb, 820 * kb},
		cpuProduces: true, kernels: 2, passes: [2]int{1, 1}, pattern: patTiled,
		stage: true, sharedOpsPerLine: [2]int{6, 6}, computePerLine: [2]sim.Tick{1597, 1450},
		writeFrac: 128, warps: 384, readback: true,
		produceGap: [2]sim.Tick{64, 58},
	},
	{
		code: "PT", name: "pathfinder", suite: "Rodinia", small: "2500", big: "5000", shared: true,
		inBytes:     [2]uint64{80 * kb, 160 * kb},
		cpuProduces: false, kernels: 3, passes: [2]int{2, 2}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{8, 8}, computePerLine: [2]sim.Tick{400, 400},
		writeFrac: 128, warps: 384,
	},
	{
		code: "SR", name: "srad", suite: "Rodinia", small: "256x256", big: "512x512", shared: true,
		inBytes:     [2]uint64{256 * kb, 1 * mb},
		cpuProduces: true, kernels: 3, passes: [2]int{2, 2}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{10, 10}, computePerLine: [2]sim.Tick{5000, 5000},
		writeFrac: 128, warps: 384, readback: true,
		produceGap: [2]sim.Tick{200, 200},
	},
	{
		code: "ST", name: "stencil", suite: "Parboil", small: "128x128x32", big: "164x164x32", shared: true,
		inBytes:     [2]uint64{2 * mb, 3444 * kb},
		cpuProduces: true, kernels: 2, passes: [2]int{3, 3}, pattern: patSequential,
		stage: true, sharedOpsPerLine: [2]int{10, 10}, computePerLine: [2]sim.Tick{3000, 3000},
		writeFrac: 64, warps: 384, readback: true,
		produceGap: [2]sim.Tick{99, 200},
	},
	{
		code: "GC", name: "graph coloring", suite: "Pannotia", small: "power", big: "delaunay-n15", shared: false,
		graphNodes: [2]int{4096, 32768}, graphDeg: 6, outBytes: [2]uint64{16 * kb, 128 * kb},
		cpuProduces: true, kernels: 3, passes: [2]int{1, 1}, pattern: patGraph,
		computePerLine: [2]sim.Tick{50, 80}, warps: 192, readback: true,
		produceGap: [2]sim.Tick{16, 5},
	},
	{
		code: "FW", name: "floyd-warshall", suite: "Pannotia", small: "256_16384", big: "512_65536", shared: false,
		inBytes:     [2]uint64{256 * kb, 1 * mb},
		cpuProduces: true, kernels: 6, passes: [2]int{1, 2}, pattern: patStrided, strideLines: 16,
		computePerLine: [2]sim.Tick{1265, 1100}, writeFrac: 128, warps: 384, readback: true,
		produceGap: [2]sim.Tick{200, 89},
	},
	{
		code: "MS", name: "maximal independent set", suite: "Pannotia", small: "power", big: "delaunay-n13", shared: false,
		graphNodes: [2]int{4096, 8192}, graphDeg: 6, outBytes: [2]uint64{16 * kb, 32 * kb},
		cpuProduces: true, kernels: 3, passes: [2]int{1, 1}, pattern: patGraph,
		computePerLine: [2]sim.Tick{600, 600}, warps: 384, readback: true,
	},
	{
		code: "SP", name: "sssp", suite: "Pannotia", small: "power", big: "delaunay-n13", shared: false,
		graphNodes: [2]int{4096, 8192}, graphDeg: 6, outBytes: [2]uint64{16 * kb, 32 * kb},
		cpuProduces: true, kernels: 3, passes: [2]int{1, 1}, pattern: patGraph,
		computePerLine: [2]sim.Tick{70, 90}, warps: 192, readback: true,
		produceGap: [2]sim.Tick{3, 0},
	},
	{
		code: "BL", name: "blackscholes", suite: "NVIDIA SDK", small: "5000", big: "10000", shared: false,
		inBytes: [2]uint64{5000 * 28, 10000 * 28}, outBytes: [2]uint64{5000 * 8, 10000 * 8},
		cpuProduces: true, kernels: 1, passes: [2]int{1, 1}, pattern: patSequential,
		computePerLine: [2]sim.Tick{8, 10},
		warps:          96, readback: true,
		produceGap: [2]sim.Tick{37, 106},
	},
	{
		code: "VA", name: "vectoradd", suite: "NVIDIA SDK", small: "50000", big: "200000", shared: false,
		inBytes: [2]uint64{50000 * 8, 200000 * 8}, outBytes: [2]uint64{50000 * 4, 200000 * 4},
		cpuProduces: true, kernels: 1, passes: [2]int{1, 1}, pattern: patSequential,
		computePerLine: [2]sim.Tick{2, 2},
		warps:          96, readback: true,
		produceGap: [2]sim.Tick{35, 118},
	},
	{
		code: "BS", name: "bitonic sort", suite: "[24]", small: "262144", big: "524288", shared: false,
		inBytes:     [2]uint64{1 * mb, 2 * mb},
		cpuProduces: true, kernels: 8, passes: [2]int{2, 2}, pattern: patStrided, strideLines: 8,
		computePerLine: [2]sim.Tick{1392, 1392}, writeFrac: 64, warps: 384,
		produceGap: [2]sim.Tick{200, 200},
	},
	{
		code: "MM", name: "matrix multiplication", suite: "[25]", small: "256x256", big: "900x900", shared: false,
		inBytes: [2]uint64{2 * 256 * kb, 2 * 3165 * kb}, outBytes: [2]uint64{256 * kb, 3165 * kb},
		cpuProduces: true, kernels: 1, passes: [2]int{3, 3}, pattern: patTiled,
		computePerLine: [2]sim.Tick{8, 8},
		warps:          96, readback: true,
		produceGap: [2]sim.Tick{115, 200},
	},
	{
		code: "MT", name: "matrix transpose", suite: "[25]", small: "32x32", big: "1600x1600", shared: false,
		inBytes: [2]uint64{4 * kb, 10000 * kb}, outBytes: [2]uint64{4 * kb, 10000 * kb},
		cpuProduces: true, kernels: 1, passes: [2]int{1, 1}, pattern: patStrided, strideLines: 32,
		computePerLine: [2]sim.Tick{2, 2}, warps: 96, readback: true,
		produceGap: [2]sim.Tick{0, 200},
	},
	{
		code: "CH", name: "cholesky", suite: "[26]", small: "150x150", big: "600x600", shared: false,
		inBytes:     [2]uint64{88 * kb, 1407 * kb},
		cpuProduces: true, kernels: 5, passes: [2]int{1, 1}, pattern: patTiled,
		computePerLine: [2]sim.Tick{914, 850}, writeFrac: 128, warps: 256, readback: true,
		produceGap: [2]sim.Tick{11, 138},
	},
}

// Codes returns the benchmark codes in Table II order.
func Codes() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.code
	}
	return out
}

// find returns the profile for a code.
func find(code string) (profile, bool) {
	for _, p := range profiles {
		if p.code == code {
			return p, true
		}
	}
	return profile{}, false
}
