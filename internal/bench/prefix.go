// Prefix memoization (DESIGN.md §11): benchmarks that start with a
// CPU produce phase share that phase's entire simulation across jobs
// that differ only in GPU-pipeline configuration. The produce phase
// runs once, the quiescent post-produce machine state is serialised
// (core.System.Snapshot) into a content-addressed store, and later
// jobs with the same (benchmark, input, prefix-relevant config)
// restore it and simulate only the kernel and readback phases —
// byte-identical to a run that never stopped.
package bench

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dstore/internal/core"
	"dstore/internal/sim"
)

// SnapshotStore is a content-addressed snapshot cache. Implementations
// must be safe for concurrent use if the caller runs jobs
// concurrently.
type SnapshotStore interface {
	// Get returns the snapshot stored under key, if present.
	Get(key string) ([]byte, bool)
	// Put stores a snapshot under key.
	Put(key string, snapshot []byte)
}

// prefixConfig strips cfg down to the fields that can influence the
// CPU produce phase. The GPU pipeline is provably idle during
// produce — no kernel has launched, so no SM, GPU L1, GPU TLB or
// prefetch activity exists (the L2 slices DO participate, via pushes
// and probes, so slice geometry, policy, MSHRs and latencies all
// stay in the key). Zeroing the idle-side fields lets a GPU
// configuration sweep share one produce prefix.
func prefixConfig(cfg core.Config) core.Config {
	cfg.SMs = 0
	cfg.MaxWarpsPerSM = 0
	cfg.GPUL1Bytes = 0
	cfg.GPUL1Ways = 0
	cfg.GPUMSHRsPerSM = 0
	cfg.GPUL1Lat = 0
	cfg.SharedLat = 0
	cfg.GPUTLBSize = 0
	// The prefetcher only fires on L2-slice demand misses, which only
	// GPU loads can cause.
	cfg.PrefetchDepth = 0
	// The stall guard is a diagnostics watchdog; it never alters the
	// event sequence.
	cfg.StallGuardEvents = 0
	cfg.Chaos = nil
	cfg.Obs = nil
	return cfg
}

// PrefixKey returns the content address of the warm-up prefix for
// (code, cfg, in), and whether the combination is memoizable at all:
// the benchmark must open with a CPU produce phase, and the run must
// be free of fault injection and event tracing (a restored run skips
// the prefix's trace events, so traced jobs always run cold).
func PrefixKey(code string, cfg core.Config, in Input) (string, bool) {
	p, ok := find(code)
	if !ok || !p.cpuProduces {
		return "", false
	}
	if cfg.Chaos != nil {
		return "", false
	}
	if cfg.Obs != nil && cfg.Obs.Options().Trace {
		return "", false
	}
	cfgJSON, err := json.Marshal(prefixConfig(cfg))
	if err != nil {
		return "", false
	}
	h := sha256.New()
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], core.SnapshotVersion())
	h.Write([]byte("dstore-prefix\x00"))
	h.Write(ver[:])
	h.Write([]byte(code))
	h.Write([]byte{0})
	h.Write([]byte(in.String()))
	h.Write([]byte{0})
	h.Write(cfgJSON)
	return hex.EncodeToString(h.Sum(nil)), true
}

// RunWithSnapshotContext is RunWithConfigContext with prefix
// memoization through store. It reports whether the run resumed from
// a stored snapshot. A nil store, an ineligible job, or any snapshot
// failure falls back to an ordinary cold run; the Result is
// byte-identical either way.
func RunWithSnapshotContext(ctx context.Context, code string, cfg core.Config, in Input, store SnapshotStore) (Result, bool, error) {
	key, eligible := PrefixKey(code, cfg, in)
	if store == nil || !eligible {
		res, err := RunWithConfigContext(ctx, code, cfg, in)
		return res, false, err
	}

	sys := core.NewSystem(cfg)
	w, err := Build(sys, code, in)
	if err != nil {
		return Result{}, false, err
	}

	if blob, ok := store.Get(key); ok {
		if err := sys.RestoreSnapshot(blob); err == nil {
			// The run began at tick 0, so the restored clock is the
			// produce phase's tick count.
			per := []sim.Tick{sys.Now()}
			tail, err := w.RunPhaseRangeContext(ctx, sys, 1, w.Phases())
			if err != nil {
				return Result{}, false, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
			}
			res, err := sealResult(sys, code, cfg, in, append(per, tail...))
			return res, true, err
		}
		// A snapshot this build cannot restore (format or shape drift):
		// discard the half-written system and run cold.
		sys = core.NewSystem(cfg)
		if w, err = Build(sys, code, in); err != nil {
			return Result{}, false, err
		}
	}

	per, err := w.RunPhaseRangeContext(ctx, sys, 0, 1)
	if err != nil {
		return Result{}, false, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
	}
	if blob, serr := sys.Snapshot(); serr == nil {
		store.Put(key, blob)
	}
	tail, err := w.RunPhaseRangeContext(ctx, sys, 1, w.Phases())
	if err != nil {
		return Result{}, false, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
	}
	res, err := sealResult(sys, code, cfg, in, append(per, tail...))
	return res, false, err
}

// sealResult finishes a run exactly the way RunWithConfigTimedContext
// does: coherence check, observer seal, result assembly. Runs started
// at tick 0, so the final clock is the total tick count.
func sealResult(sys *core.System, code string, cfg core.Config, in Input, phases []sim.Tick) (Result, error) {
	if err := sys.CheckCoherence(); err != nil {
		return Result{}, fmt.Errorf("bench %s (%s, %s): %w", code, cfg.Mode, in, err)
	}
	cfg.Obs.FinishRun(sys.Now())
	return Result{
		Code: code, Mode: cfg.Mode, In: in,
		Ticks:       sys.Now(),
		PhaseTicks:  phases,
		L2Accesses:  sys.GPUL2Accesses(),
		L2Misses:    sys.GPUL2Misses(),
		MissRate:    sys.GPUL2MissRate(),
		Pushes:      sys.PushesReceived(),
		XbarBytes:   sys.CoherenceTrafficBytes(),
		DirectBytes: sys.DirectTrafficBytes(),
	}, nil
}
