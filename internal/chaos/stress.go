package chaos

import (
	"fmt"
	"strings"

	"dstore/internal/coherence"
	"dstore/internal/core"
	"dstore/internal/gpu"
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// StressConfig drives one randomized coherence stress run: N logical
// agents issue randomized load/store/kernel-launch streams against a
// data-value oracle, under the faults of Profile, with invariant checks
// at every quiescent point.
type StressConfig struct {
	Seed uint64
	// Ops is the approximate total number of checked agent operations
	// (split evenly across rounds and agents). Default 2000.
	Ops int
	// Rounds is the number of quiescent points. Default 10.
	Rounds int
	// Agents is the number of logical agents; agent 0 drives the CPU
	// controller, the rest drive GPU L2 slice controllers. Default 4.
	Agents int
	// Lines is the size of the shared working set in cache lines (per
	// region: heap, and direct-store in direct modes). Default 256 —
	// deliberately larger than the stress system's shrunken caches so
	// evictions, writebacks and push overflows all happen.
	Lines int
	// Mode selects the coherence regime under test.
	Mode core.Mode
	// Profile is the fault schedule.
	Profile Profile
	// Kernels launches an occasional real GPU kernel alongside the
	// checked agents for cross-layer traffic (L1 flash-invalidates,
	// warp-issued loads/stores). Default on when Ops is defaulted.
	Kernels bool
}

func (c StressConfig) withDefaults() StressConfig {
	if c.Ops == 0 {
		c.Ops = 2000
		c.Kernels = true
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Agents == 0 {
		c.Agents = 4
	}
	if c.Agents < 2 {
		c.Agents = 2 // agent 0 is CPU-side; at least one GPU agent
	}
	if c.Lines == 0 {
		c.Lines = 256
	}
	return c
}

// StressResult is the outcome of one stress run. Transcript is
// deterministic: the same (seed, profile, config) produces the same
// bytes on every run.
type StressResult struct {
	Seed           uint64
	Transcript     string
	Violations     []string
	Ops            int
	Ticks          sim.Tick
	FaultsInjected uint64
	Nacks          uint64
	Retries        uint64
}

// Failed reports whether the run detected violations.
func (r *StressResult) Failed() bool { return len(r.Violations) > 0 }

// stressSystemConfig shrinks the Table I machine so the working set
// overwhelms the caches: evictions, writebacks, MSHR pressure and push
// overflows all occur within a few thousand operations.
func stressSystemConfig(mode core.Mode, chaos *core.ChaosConfig) core.Config {
	cfg := core.DefaultConfig(mode)
	cfg.CPUL1DBytes = 4 * 1024
	cfg.CPUL2Bytes = 32 * 1024
	cfg.CPUMSHRs = 4
	cfg.GPUL1Bytes = 4 * 1024
	cfg.GPUL2Bytes = 32 * 1024 // 8KB per slice = 64 lines
	cfg.SliceMSHRs = 4
	cfg.SMs = 4
	cfg.MaxWarpsPerSM = 4
	cfg.StallGuardEvents = 2_000_000
	cfg.Chaos = chaos
	return cfg
}

// stressRun is the live state of one run.
type stressRun struct {
	cfg  StressConfig
	plan *FaultPlan
	sys  *core.System

	// Per-agent op-stream PRNGs (agent i draws only from rngs[i], so an
	// agent's decisions depend only on the seed and its own completion
	// order).
	rngs []*sim.Rand

	heapPA   []memsys.Addr
	directPA []memsys.Addr
	kernelPA []memsys.Addr
	heapVA   memsys.Addr
	directVA memsys.Addr
	kernelVA memsys.Addr

	// Oracle state. committed* hold each line's version as of the last
	// quiescent point; *Hist hold the versions written this round (in
	// issue order — single writer per line per round makes them
	// monotone). A load must observe the committed version or one of
	// this round's writes.
	committedHeap []uint64
	committedDir  []uint64
	heapHist      [][]uint64
	dirHist       [][]uint64
	// heapOwner[i] is the agent allowed to write heap line i this round.
	heapOwner []int

	round       int
	opsIssued   int
	outstanding int
	violations  []string
	transcript  strings.Builder
	aborted     bool
}

// RunStress executes one stress run. The returned result always carries
// the transcript; err is non-nil when the run detected violations (or
// could not be set up), with the first violation in the message.
func RunStress(cfg StressConfig) (*StressResult, error) {
	cfg = cfg.withDefaults()
	r := &stressRun{cfg: cfg, plan: NewFaultPlan(cfg.Seed, cfg.Profile)}
	r.sys = core.NewSystem(stressSystemConfig(cfg.Mode, r.plan.Config(func(err error) {
		r.violate("protocol failure: %v", err)
	})))
	for i := 0; i < cfg.Agents; i++ {
		r.rngs = append(r.rngs, sim.NewRand(cfg.Seed^(0x9e3779b97f4a7c15*uint64(i+1))))
	}
	if err := r.setup(); err != nil {
		return nil, err
	}
	r.header()
	for r.round = 0; r.round < cfg.Rounds && !r.aborted; r.round++ {
		r.runRound()
	}
	res := r.finish()
	if res.Failed() {
		return res, fmt.Errorf("chaos: stress run seed=%d profile=%s: %d violation(s), first: %s",
			cfg.Seed, cfg.Profile.Name, len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// setup allocates and pre-maps the working set. Agents drive the
// coherence controllers with physical addresses directly (the TLBs are
// exercised by the kernel launches).
func (r *stressRun) setup() error {
	mapLines := func(base memsys.Addr, n int) ([]memsys.Addr, error) {
		pas := make([]memsys.Addr, n)
		for i := 0; i < n; i++ {
			va := base + memsys.Addr(i)*memsys.LineSize
			pa, err := r.sys.PT.EnsureMapped(va)
			if err != nil {
				return nil, err
			}
			pas[i] = memsys.LineAlign(pa)
		}
		return pas, nil
	}
	size := uint64(r.cfg.Lines) * memsys.LineSize
	var err error
	if r.heapVA, err = r.sys.AllocPrivate(size, "stress.heap"); err != nil {
		return err
	}
	if r.heapPA, err = mapLines(r.heapVA, r.cfg.Lines); err != nil {
		return err
	}
	if r.cfg.Mode.DirectStoreEnabled() {
		if r.directVA, err = r.sys.Space.AllocDirect(size, "stress.direct"); err != nil {
			return err
		}
		if r.directPA, err = mapLines(r.directVA, r.cfg.Lines); err != nil {
			return err
		}
	}
	if r.cfg.Kernels {
		kLines := 64
		if r.kernelVA, err = r.sys.AllocPrivate(uint64(kLines)*memsys.LineSize, "stress.kernel"); err != nil {
			return err
		}
		if r.kernelPA, err = mapLines(r.kernelVA, kLines); err != nil {
			return err
		}
	}
	r.committedHeap = make([]uint64, r.cfg.Lines)
	r.committedDir = make([]uint64, len(r.directPA))
	r.heapHist = make([][]uint64, r.cfg.Lines)
	r.dirHist = make([][]uint64, len(r.directPA))
	r.heapOwner = make([]int, r.cfg.Lines)
	return nil
}

// heapWriters returns the agent ids allowed to write shared heap lines.
// In standalone mode the CPU must stay off them entirely: §III-H removes
// CPU↔GPU cross-probes, so CPU-cached shared data would be incoherent
// by construction.
func (r *stressRun) heapWriters() []int {
	first := 0
	if r.cfg.Mode == core.ModeStandalone {
		first = 1
	}
	ids := make([]int, 0, r.cfg.Agents-first)
	for i := first; i < r.cfg.Agents; i++ {
		ids = append(ids, i)
	}
	return ids
}

func (r *stressRun) ctrls() []*coherence.Ctrl {
	return append([]*coherence.Ctrl{r.sys.CPUCtrl}, r.sys.Slices...)
}

func (r *stressRun) violate(format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	r.violations = append(r.violations, v)
	fmt.Fprintf(&r.transcript, "VIOLATION round %d: %s\n", r.round, v)
}

func (r *stressRun) header() {
	fmt.Fprintf(&r.transcript, "stress seed=%d profile=%s mode=%s agents=%d lines=%d rounds=%d resilient=%v\n",
		r.cfg.Seed, r.cfg.Profile.Name, r.cfg.Mode, r.cfg.Agents, r.cfg.Lines, r.cfg.Rounds,
		r.cfg.Profile.needsResilience())
}

// runRound issues one round of closed-loop agent traffic, drains the
// system, and checks the oracle and protocol invariants at the
// resulting quiescent point.
func (r *stressRun) runRound() {
	writers := r.heapWriters()
	for i := range r.heapOwner {
		r.heapOwner[i] = writers[(i+r.round)%len(writers)]
	}
	perAgent := r.cfg.Ops / (r.cfg.Rounds * r.cfg.Agents)
	if perAgent < 1 {
		perAgent = 1
	}
	for id := 0; id < r.cfg.Agents; id++ {
		id := id
		// Stagger starts so agents do not lockstep on the same tick.
		r.sys.Engine.Schedule(sim.Tick(id), func() { r.agentLoop(id, perAgent) })
	}
	kernel := r.cfg.Kernels && r.rngs[0].Bool(0.4)
	if kernel {
		r.launchKernel()
	}
	if err := r.drain(); err != nil {
		r.violate("engine panic: %v", err)
		r.aborted = true
		return
	}
	if r.outstanding != 0 {
		r.violate("%d agent operations never completed (stuck run)\n%s",
			r.outstanding, r.sys.Mem.TransactionDump())
		r.aborted = true
		return
	}
	r.checkQuiescent()
	fmt.Fprintf(&r.transcript, "round %2d: ops=%d kernel=%v tick=%d faults=%d nacks=%d retries=%d\n",
		r.round, perAgent*r.cfg.Agents, kernel, r.sys.Now(),
		r.plan.Injected(), r.ctrlSum("push_nacks"), r.ctrlSum("push_retries"))
}

// drain runs the engine to quiescence, converting panics (the engine's
// forward-progress guard, protocol assertions) into an error instead of
// killing the process.
func (r *stressRun) drain() (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	r.sys.Engine.Run()
	return nil
}

// agentLoop issues the agent's next operation; the completion callback
// re-enters the loop, so each agent is a closed-loop requester.
func (r *stressRun) agentLoop(id, remaining int) {
	if remaining == 0 || r.aborted {
		return
	}
	r.issueOne(id, func() { r.agentLoop(id, remaining-1) })
}

func (r *stressRun) issueOne(id int, cont func()) {
	rng := r.rngs[id]
	direct := len(r.directPA) > 0
	cpuAgent := id == 0
	switch {
	case cpuAgent && r.cfg.Mode == core.ModeStandalone:
		r.issueDirectOp(id, cont)
	case cpuAgent && direct && rng.Bool(0.5):
		r.issueDirectOp(id, cont)
	case !cpuAgent && direct && rng.Bool(0.25):
		r.issueDirectLoad(id, cont)
	default:
		r.issueHeapOp(id, cont)
	}
}

// issueHeapOp performs a cacheable load or store on a shared heap line
// through the agent's controller (CPU controller for agent 0, the
// owning GPU L2 slice otherwise).
func (r *stressRun) issueHeapOp(id int, cont func()) {
	rng := r.rngs[id]
	idx := rng.Intn(len(r.heapPA))
	pa := r.heapPA[idx]
	ctrl := r.sys.CPUCtrl
	if id != 0 {
		ctrl = r.sys.Slices[memsys.SliceFor(pa, r.sys.Cfg.GPUL2Slices)]
	}
	store := r.heapOwner[idx] == id && rng.Bool(0.5)
	r.opsIssued++
	r.outstanding++
	if store {
		ver := r.sys.Vers.Next()
		r.heapHist[idx] = append(r.heapHist[idx], ver)
		req := &memsys.Request{Type: memsys.Store, Addr: pa, Size: memsys.LineSize, Ver: ver}
		req.Done = func(sim.Tick) {
			r.outstanding--
			cont()
		}
		ctrl.Access(req)
		return
	}
	req := &memsys.Request{Type: memsys.Load, Addr: pa, Size: memsys.LineSize}
	req.Done = func(sim.Tick) {
		r.outstanding--
		r.checkLoad("heap", idx, req.Ver, r.committedHeap, r.heapHist)
		cont()
	}
	ctrl.Access(req)
}

// issueDirectOp is the CPU agent's traffic on the direct-store region:
// a RemoteStore pushed to the owning GPU L2 slice, or an uncacheable
// RemoteLoad reading it back. In standalone mode (§III-H) the CPU is a
// pure producer: there are no cross-probes, so a RemoteLoad reads DRAM
// without snooping the GPU L2 and would legitimately observe data older
// than the pushed copy — readback there is the GPU agents' job.
func (r *stressRun) issueDirectOp(id int, cont func()) {
	rng := r.rngs[id]
	idx := rng.Intn(len(r.directPA))
	pa := r.directPA[idx]
	r.opsIssued++
	r.outstanding++
	if r.cfg.Mode == core.ModeStandalone || rng.Bool(0.6) {
		ver := r.sys.Vers.Next()
		r.dirHist[idx] = append(r.dirHist[idx], ver)
		req := &memsys.Request{Type: memsys.RemoteStore, Addr: pa, Size: memsys.LineSize, Ver: ver}
		req.Done = func(sim.Tick) {
			r.outstanding--
			cont()
		}
		r.sys.CPUCtrl.Access(req)
		return
	}
	req := &memsys.Request{Type: memsys.Load, Addr: pa, Size: memsys.LineSize}
	req.Done = func(sim.Tick) {
		r.outstanding--
		r.checkLoad("direct", idx, req.Ver, r.committedDir, r.dirHist)
		cont()
	}
	r.sys.CPUCtrl.RemoteLoad(req)
}

// issueDirectLoad is a GPU agent reading a direct-store line through
// its owning slice (the consumer side of the push).
func (r *stressRun) issueDirectLoad(id int, cont func()) {
	rng := r.rngs[id]
	idx := rng.Intn(len(r.directPA))
	pa := r.directPA[idx]
	r.opsIssued++
	r.outstanding++
	req := &memsys.Request{Type: memsys.Load, Addr: pa, Size: memsys.LineSize}
	req.Done = func(sim.Tick) {
		r.outstanding--
		r.checkLoad("direct", idx, req.Ver, r.committedDir, r.dirHist)
		cont()
	}
	r.sys.Slices[memsys.SliceFor(pa, r.sys.Cfg.GPUL2Slices)].Access(req)
}

// checkLoad validates an observed load version against the oracle: it
// must be the committed version from the last quiescent point or one of
// this round's writes to the line. Anything else is lost, stale beyond
// a round boundary, or fabricated data — a protocol bug.
func (r *stressRun) checkLoad(region string, idx int, observed uint64, committed []uint64, hist [][]uint64) {
	if observed == committed[idx] {
		return
	}
	for _, v := range hist[idx] {
		if v == observed {
			return
		}
	}
	r.violate("%s line %d: load observed version %d; expected %d or one of %d writes this round",
		region, idx, observed, committed[idx], len(hist[idx]))
}

// launchKernel fires a small real GPU kernel: warps load from the
// shared working set (direct region when present, heap otherwise) and
// store into a private kernel buffer. Kernel-written lines are excluded
// from the version oracle (their versions come from warp-interleaved
// stores) but still participate in invariant checks.
func (r *stressRun) launchKernel() {
	loadBase := r.heapVA
	if len(r.directPA) > 0 {
		loadBase = r.directVA
	}
	var warps []gpu.Warp
	for w := 0; w < 8; w++ {
		warps = append(warps, gpu.Warp{Ops: []gpu.WarpOp{
			{Kind: gpu.OpGlobalLoad, Addr: loadBase + memsys.Addr(w*4)*memsys.LineSize, Lines: 4},
			{Kind: gpu.OpCompute, Gap: 16},
			{Kind: gpu.OpGlobalStore, Addr: r.kernelVA + memsys.Addr(w*8)*memsys.LineSize, Lines: 8},
		}})
	}
	r.sys.GPU.Launch(gpu.Kernel{Name: fmt.Sprintf("stress-r%d", r.round), Warps: warps}, nil)
}

// checkQuiescent runs the full verification at a drained point: MOESI
// invariants over every line in play, all-copies-agree data
// consistency, and the oracle's expected memory image.
func (r *stressRun) checkQuiescent() {
	var all []memsys.Addr
	all = append(all, r.heapPA...)
	all = append(all, r.directPA...)
	all = append(all, r.kernelPA...)
	if err := r.sys.Mem.CheckInvariants(all); err != nil {
		r.violate("invariant: %v", err)
	}
	for _, pa := range all {
		r.checkConsistent(pa)
	}
	r.commitRegion("heap", r.heapPA, r.committedHeap, r.heapHist)
	if len(r.directPA) > 0 {
		r.commitRegion("direct", r.directPA, r.committedDir, r.dirHist)
	}
}

// authoritative returns the line's current version: the owner's copy if
// any cache owns it, memory otherwise.
func (r *stressRun) authoritative(pa memsys.Addr) uint64 {
	for _, c := range r.ctrls() {
		switch c.State(pa) {
		case coherence.MM, coherence.M, coherence.O:
			return c.Ver(pa)
		}
	}
	return r.sys.Mem.MemVer(pa)
}

// checkConsistent verifies every cached copy of a line agrees with the
// authoritative version — at a quiescent point all copies hold the same
// data, so any divergence (e.g. a survivor of a skipped invalidation)
// is a coherence violation even before anyone loads it.
func (r *stressRun) checkConsistent(pa memsys.Addr) {
	auth := r.authoritative(pa)
	for _, c := range r.ctrls() {
		if st := c.State(pa); st != coherence.I {
			if v := c.Ver(pa); v != auth {
				r.violate("line %#x: %s holds version %d in %s, authoritative is %d",
					uint64(pa), c.Name(), v, coherence.StateName(st), auth)
			}
		}
	}
}

// commitRegion checks each line's authoritative version against the
// oracle's expectation — the last write of the round for written lines,
// the previous committed version for untouched ones — then advances the
// committed image.
func (r *stressRun) commitRegion(region string, pas []memsys.Addr, committed []uint64, hist [][]uint64) {
	for i, pa := range pas {
		auth := r.authoritative(pa)
		if n := len(hist[i]); n > 0 {
			if want := hist[i][n-1]; auth != want {
				r.violate("%s line %d: committed version %d after %d writes, want %d (last write lost)",
					region, i, auth, n, want)
			}
		} else if auth != committed[i] {
			r.violate("%s line %d: version changed %d -> %d with no writes this round",
				region, i, committed[i], auth)
		}
		committed[i] = auth
		hist[i] = hist[i][:0]
	}
}

func (r *stressRun) ctrlSum(counter string) uint64 {
	var n uint64
	for _, c := range r.ctrls() {
		n += c.Counters().Get(counter) //dstore:allow-statskey callers pass registered literals
	}
	return n
}

func (r *stressRun) finish() *StressResult {
	res := &StressResult{
		Seed:           r.cfg.Seed,
		Violations:     r.violations,
		Ops:            r.opsIssued,
		Ticks:          r.sys.Now(),
		FaultsInjected: r.plan.Injected(),
		Nacks:          r.ctrlSum("push_nacks"),
		Retries:        r.ctrlSum("push_retries"),
	}
	fmt.Fprintf(&r.transcript, "final: ops=%d ticks=%d faults=%d nacks=%d retries=%d pushes=%d violations=%d\n",
		res.Ops, res.Ticks, res.FaultsInjected, res.Nacks, res.Retries,
		r.sys.PushesReceived(), len(res.Violations))
	res.Transcript = r.transcript.String()
	return res
}
