package chaos

import (
	"strings"
	"testing"

	"dstore/internal/core"
)

// small returns a quick stress config for unit tests.
func small(mode core.Mode, prof Profile) StressConfig {
	return StressConfig{
		Seed: 42, Ops: 400, Rounds: 4, Agents: 4, Lines: 128,
		Mode: mode, Profile: prof, Kernels: true,
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStressCleanUnderFaults: every survivable profile, every mode —
// the run must complete with zero oracle/invariant violations.
func TestStressCleanUnderFaults(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCCSM, core.ModeDirectStore, core.ModeStandalone} {
		for _, prof := range Profiles() {
			if prof.Mutation() {
				continue
			}
			t.Run(mode.String()+"/"+prof.Name, func(t *testing.T) {
				res, err := RunStress(small(mode, prof))
				if err != nil {
					t.Fatalf("stress failed:\n%s\nerr: %v", res.Transcript, err)
				}
				if res.Ops == 0 {
					t.Fatal("no operations issued")
				}
				// Push-only profiles have nothing to hit in CCSM mode
				// (no direct-store traffic exists there).
				pushOnly := prof.NetJitterProb == 0 && prof.StallProb == 0
				if prof.Name != "none" && res.FaultsInjected == 0 && !(pushOnly && mode == core.ModeCCSM) {
					t.Errorf("profile %s injected no faults", prof.Name)
				}
			})
		}
	}
}

// TestStressHeavyInjectsRecoveries: under the heavy profile on the
// direct-store path, NACKs and retries must actually occur — otherwise
// the recovery machinery is decorative.
func TestStressHeavyInjectsRecoveries(t *testing.T) {
	cfg := small(core.ModeDirectStore, mustProfile(t, "heavy"))
	cfg.Ops = 1200
	res, err := RunStress(cfg)
	if err != nil {
		t.Fatalf("stress failed:\n%s\nerr: %v", res.Transcript, err)
	}
	if res.Nacks == 0 {
		t.Error("heavy profile produced no push NACKs")
	}
	if res.Retries == 0 {
		t.Error("heavy profile produced no push retries")
	}
}

// TestStressDeterminism: the same (seed, profile) must yield a
// byte-identical transcript on repeated runs.
func TestStressDeterminism(t *testing.T) {
	cfg := small(core.ModeDirectStore, mustProfile(t, "heavy"))
	a, err := RunStress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transcript != b.Transcript {
		t.Fatalf("transcripts differ between identical runs:\n--- first\n%s\n--- second\n%s", a.Transcript, b.Transcript)
	}
}

// TestSweepWorkerInvariance: the ordered sweep output must not depend
// on the worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	cfg := small(core.ModeDirectStore, mustProfile(t, "light"))
	cfg.Ops = 200
	join := func(rs []*StressResult) string {
		var b strings.Builder
		for _, r := range rs {
			b.WriteString(r.Transcript)
		}
		return b.String()
	}
	serial, err := RunSweep(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if join(serial) != join(parallel) {
		t.Fatal("sweep transcripts differ between -workers=1 and -workers=4")
	}
	seen := map[uint64]bool{}
	for _, r := range serial {
		if seen[r.Seed] {
			t.Fatalf("duplicate seed %d in sweep", r.Seed)
		}
		seen[r.Seed] = true
	}
}

// TestMutationCaught: the deliberately injected protocol bug (skip an
// invalidation while acking the probe) must be detected as an
// invariant/consistency violation — this is the harness proving it can
// catch real bugs, not just survive faults.
func TestMutationCaught(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCCSM, core.ModeDirectStore} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := small(mode, mustProfile(t, "mutation"))
			cfg.Ops = 1600
			res, err := RunStress(cfg)
			if err == nil {
				t.Fatalf("mutation profile was not caught; transcript:\n%s", res.Transcript)
			}
			if !res.Failed() {
				t.Fatal("error returned but no violations recorded")
			}
			if !strings.Contains(res.Transcript, "VIOLATION") {
				t.Fatal("transcript carries no violation record")
			}
		})
	}
}

// TestPushLossExhaustsRetries: dropping every push must end in a
// diagnosed failure (retry exhaustion with a transaction dump), not a
// hang.
func TestPushLossExhaustsRetries(t *testing.T) {
	prof := Profile{Name: "drop-all", PushDropProb: 1.0}
	cfg := small(core.ModeDirectStore, prof)
	cfg.Kernels = false
	res, err := RunStress(cfg)
	if err == nil {
		t.Fatalf("total push loss not diagnosed; transcript:\n%s", res.Transcript)
	}
	if !strings.Contains(res.Transcript, "unacknowledged") {
		t.Fatalf("expected retry-exhaustion diagnosis, got:\n%s", res.Transcript)
	}
}

// TestResilientPushEquivalence: with the resilient protocol enabled but
// no faults firing, direct-store runs still complete cleanly — the
// ack/retry machinery is semantically transparent.
func TestResilientPushEquivalence(t *testing.T) {
	// NackProb > 0 turns resilience on; a vanishing probability keeps
	// the fault schedule effectively empty.
	prof := Profile{Name: "resilient-quiet", NackProb: 1e-12}
	res, err := RunStress(small(core.ModeDirectStore, prof))
	if err != nil {
		t.Fatalf("resilient fault-free stress failed:\n%s\nerr: %v", res.Transcript, err)
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestStressSoak10k is the acceptance soak: a 10,000-operation seeded
// run under the heavy fault profile must complete clean. It is the
// designated -race target (see the Makefile stress goals); -short
// skips it to keep the default suite fast.
func TestStressSoak10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-op soak skipped in -short mode")
	}
	res, err := RunStress(StressConfig{
		Seed: 2026, Ops: 10_000, Mode: core.ModeDirectStore,
		Profile: mustProfile(t, "heavy"), Kernels: true,
	})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if res.Failed() {
		t.Fatalf("soak reported %d violations: %s", len(res.Violations), res.Violations[0])
	}
	if res.FaultsInjected == 0 {
		t.Fatal("heavy soak injected no faults")
	}
	t.Logf("soak: ops=%d ticks=%d faults=%d nacks=%d retries=%d",
		res.Ops, res.Ticks, res.FaultsInjected, res.Nacks, res.Retries)
}
