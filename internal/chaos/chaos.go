// Package chaos provides deterministic fault injection and a
// randomized coherence stress harness for the simulator.
//
// A FaultPlan draws every fault decision from a single seeded SplitMix64
// stream, so a (seed, profile) pair names one exact fault schedule: the
// same faults hit the same messages at the same ticks on every run.
// That turns "flaky under faults" into a reproducible bug report — a
// failing seed replays exactly.
//
// The injected fault classes are:
//
//   - delay jitter on the shared coherence network (per-pair FIFO is
//     preserved, so only the global interleaving is perturbed — the
//     protocol assumes point-to-point ordering, as real NoCs provide);
//   - drop, duplication and jitter on the dedicated direct-store link
//     (exercising the resilient ack/NACK push protocol);
//   - n-cycle controller stalls ahead of accesses and probes;
//   - receiver-side push NACKs (forcing sender backoff and retry);
//   - an optional protocol *mutation* (skip an invalidation) used to
//     prove the harness detects real violations.
package chaos

import (
	"fmt"
	"sort"

	"dstore/internal/coherence"
	"dstore/internal/core"
	"dstore/internal/interconnect"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Profile sets the per-event fault probabilities and magnitudes. The
// zero value injects nothing.
type Profile struct {
	Name string

	// Shared coherence network: each delivery is delayed by a uniform
	// 1..NetJitterMax extra ticks with probability NetJitterProb.
	NetJitterProb float64
	NetJitterMax  sim.Tick

	// Dedicated direct-store link.
	PushDropProb   float64
	PushDupProb    float64
	PushJitterProb float64
	PushJitterMax  sim.Tick

	// Controller-side faults.
	StallProb float64
	StallMax  sim.Tick
	NackProb  float64

	// SkipInvalidateProb is the deliberate protocol bug (a peer keeps
	// its copy while acknowledging an invalidating probe). Any profile
	// with this non-zero is expected to FAIL invariant checking — it
	// exists to validate the harness's detection power.
	SkipInvalidateProb float64
}

// Mutation reports whether the profile injects a true protocol bug
// (expected to produce violations) rather than survivable faults.
func (p Profile) Mutation() bool { return p.SkipInvalidateProb > 0 }

// Profiles returns the named fault profiles, mildest first.
func Profiles() []Profile {
	return []Profile{
		{Name: "none"},
		{
			Name:          "light",
			NetJitterProb: 0.02, NetJitterMax: 8,
			PushJitterProb: 0.05, PushJitterMax: 16,
			StallProb: 0.01, StallMax: 4,
		},
		{
			Name:          "heavy",
			NetJitterProb: 0.10, NetJitterMax: 32,
			PushDropProb: 0.05, PushDupProb: 0.05,
			PushJitterProb: 0.20, PushJitterMax: 64,
			StallProb: 0.05, StallMax: 16,
			NackProb: 0.10,
		},
		{
			Name:         "drop-heavy",
			PushDropProb: 0.30, PushDupProb: 0.10,
			PushJitterProb: 0.30, PushJitterMax: 128,
			NackProb: 0.20,
		},
		{
			Name:               "mutation",
			SkipInvalidateProb: 0.2,
		},
	}
}

// ProfileByName looks up a named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(Profiles()))
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %v)", name, names)
}

// needsResilience reports whether the profile can lose or refuse pushes,
// which the fire-and-forget baseline cannot survive.
func (p Profile) needsResilience() bool {
	return p.PushDropProb > 0 || p.PushDupProb > 0 || p.NackProb > 0
}

// FaultPlan is a profile bound to a seeded PRNG: the complete,
// reproducible fault schedule for one run. One plan serves one System.
type FaultPlan struct {
	seed uint64
	prof Profile
	rng  *sim.Rand

	counters    *stats.Set
	injected    *stats.Counter
	netJitter   *stats.Counter
	pushDrops   *stats.Counter
	pushDups    *stats.Counter
	pushJitter  *stats.Counter
	stalls      *stats.Counter
	nacks       *stats.Counter
	skippedInvs *stats.Counter
}

// NewFaultPlan binds a profile to a seed.
func NewFaultPlan(seed uint64, prof Profile) *FaultPlan {
	f := &FaultPlan{
		seed:     seed,
		prof:     prof,
		rng:      sim.NewRand(seed),
		counters: stats.NewSet(),
	}
	f.injected = f.counters.Counter("faults_injected")
	f.netJitter = f.counters.Counter("net_jitter")
	f.pushDrops = f.counters.Counter("push_drops")
	f.pushDups = f.counters.Counter("push_dups")
	f.pushJitter = f.counters.Counter("push_jitter")
	f.stalls = f.counters.Counter("ctrl_stalls")
	f.nacks = f.counters.Counter("push_nacks")
	f.skippedInvs = f.counters.Counter("skipped_invalidates")
	return f
}

// Counters exposes the per-class fault counts (plus the
// "faults_injected" total).
func (f *FaultPlan) Counters() *stats.Set { return f.counters }

// Injected returns the total faults injected so far.
func (f *FaultPlan) Injected() uint64 { return f.injected.Value() }

// Profile returns the plan's profile.
func (f *FaultPlan) Profile() Profile { return f.prof }

// Seed returns the plan's seed.
func (f *FaultPlan) Seed() uint64 { return f.seed }

// draw decides one fault of probability p, counting it when it fires.
// Probability-zero faults consume no PRNG state, so enabling one fault
// class does not shift another class's schedule between profiles that
// share the remaining settings.
func (f *FaultPlan) draw(p float64, class *stats.Counter) bool {
	if p <= 0 || !f.rng.Bool(p) {
		return false
	}
	f.injected.Inc()
	class.Inc()
	return true
}

// magnitude draws a uniform 1..max tick count.
func (f *FaultPlan) magnitude(max sim.Tick) sim.Tick {
	if max <= 1 {
		return 1
	}
	return 1 + sim.Tick(f.rng.Uint64n(uint64(max)))
}

// Hooks builds the controller-side fault hooks.
func (f *FaultPlan) Hooks() *coherence.ChaosHooks {
	return &coherence.ChaosHooks{
		StallTicks: func() sim.Tick {
			if !f.draw(f.prof.StallProb, f.stalls) {
				return 0
			}
			return f.magnitude(f.prof.StallMax)
		},
		NackPush: func() bool {
			return f.draw(f.prof.NackProb, f.nacks)
		},
		SkipInvalidate: func() bool {
			return f.draw(f.prof.SkipInvalidateProb, f.skippedInvs)
		},
	}
}

// Config assembles the full core.ChaosConfig wiring for this plan:
// network and direct-link wrappers, controller hooks, the resilient
// push protocol whenever the profile can lose or refuse pushes, and
// the memory controller's stuck-transaction watchdog. onFailure
// receives fatal protocol failures (nil panics instead).
func (f *FaultPlan) Config(onFailure func(error)) *core.ChaosConfig {
	ch := &core.ChaosConfig{
		Hooks:     f.Hooks(),
		OnFailure: onFailure,
		// The watchdog limit is far beyond any legitimate transaction
		// latency (even queued behind a hot line under heavy stalls) so
		// it only fires on genuine loss of progress.
		WatchdogInterval: 1 << 16,
		WatchdogLimit:    1 << 20,
	}
	ch.Resilience.Enabled = f.prof.needsResilience()
	if f.prof.NetJitterProb > 0 {
		ch.WrapNet = func(e *sim.Engine, n interconnect.Network) interconnect.Network {
			return &chaosNet{inner: n, engine: e, f: f, lastPair: make(map[string]sim.Tick)}
		}
	}
	if f.prof.PushDropProb > 0 || f.prof.PushDupProb > 0 || f.prof.PushJitterProb > 0 {
		ch.WrapDirect = func(e *sim.Engine, p interconnect.DirectPort) interconnect.DirectPort {
			return &chaosDirect{inner: p, engine: e, f: f}
		}
	}
	return ch
}

// chaosNet wraps the coherence network with delivery jitter. Per-pair
// FIFO order is preserved: a jittered message holds back later messages
// on the same (src, dst) pair instead of being overtaken, because the
// protocol (like real point-to-point ordered NoCs) assumes pairwise
// ordering — violating it would inject false bugs rather than stress.
type chaosNet struct {
	inner    interconnect.Network
	engine   *sim.Engine
	f        *FaultPlan
	lastPair map[string]sim.Tick
}

func (n *chaosNet) Name() string          { return n.inner.Name() }
func (n *chaosNet) Counters() *stats.Set  { return n.inner.Counters() }
func (n *chaosNet) TotalBytes() uint64    { return n.inner.TotalBytes() }
func (n *chaosNet) TotalMessages() uint64 { return n.inner.TotalMessages() }

func (n *chaosNet) Send(src, dst string, size int, deliver func(now sim.Tick)) sim.Tick {
	if deliver == nil {
		return n.inner.Send(src, dst, size, nil)
	}
	key := src + "\x00" + dst
	return n.inner.Send(src, dst, size, func(arr sim.Tick) {
		at := arr
		if n.f.draw(n.f.prof.NetJitterProb, n.f.netJitter) {
			at += n.f.magnitude(n.f.prof.NetJitterMax)
		}
		if last := n.lastPair[key]; at < last {
			at = last
		}
		n.lastPair[key] = at
		if at == arr {
			deliver(arr)
			return
		}
		n.engine.ScheduleAt(at, func() { deliver(at) })
	})
}

// SendArg funnels through Send: chaos wrapping is cold, so the adapter
// closure it allocates per message is irrelevant.
func (n *chaosNet) SendArg(src, dst string, size int, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	if fn == nil {
		return n.Send(src, dst, size, nil)
	}
	return n.Send(src, dst, size, func(now sim.Tick) { fn(arg, now) })
}

// chaosDirect wraps the dedicated push link with message loss,
// duplication and jitter. Unlike the shared network, reordering IS
// allowed here: the resilient push protocol must tolerate a retried
// old push arriving after a newer same-line push, and the receiver's
// version check is exactly what this exercises.
type chaosDirect struct {
	inner  interconnect.DirectPort
	engine *sim.Engine
	f      *FaultPlan
}

func (d *chaosDirect) Name() string         { return d.inner.Name() }
func (d *chaosDirect) Counters() *stats.Set { return d.inner.Counters() }

func (d *chaosDirect) Send(size int, deliver func(now sim.Tick)) sim.Tick {
	if deliver == nil {
		return d.inner.Send(size, nil)
	}
	if d.f.draw(d.f.prof.PushDropProb, d.f.pushDrops) {
		// The message occupies the link and then vanishes in flight.
		return d.inner.Send(size, nil)
	}
	wrapped := func(arr sim.Tick) {
		if d.f.draw(d.f.prof.PushJitterProb, d.f.pushJitter) {
			at := arr + d.f.magnitude(d.f.prof.PushJitterMax)
			d.engine.ScheduleAt(at, func() { deliver(at) })
			return
		}
		deliver(arr)
	}
	arrival := d.inner.Send(size, wrapped)
	if d.f.draw(d.f.prof.PushDupProb, d.f.pushDups) {
		d.inner.Send(size, wrapped)
	}
	return arrival
}

// SendArg funnels through Send: chaos wrapping is cold, so the adapter
// closure it allocates per message is irrelevant.
func (d *chaosDirect) SendArg(size int, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	if fn == nil {
		return d.Send(size, nil)
	}
	return d.Send(size, func(now sim.Tick) { fn(arg, now) })
}
