package chaos

import (
	"fmt"
	"sync"
)

// RunSweep executes instances independent stress runs (seeds cfg.Seed,
// cfg.Seed+1, ...) across a worker pool. Results come back in instance
// order regardless of worker count or scheduling, so concatenated
// transcripts are byte-identical for any -workers value — parallelism
// must never be able to masquerade as nondeterminism. The returned
// error aggregates every failed instance.
func RunSweep(cfg StressConfig, instances, workers int) ([]*StressResult, error) {
	cfg = cfg.withDefaults()
	if instances < 1 {
		instances = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > instances {
		workers = instances
	}
	results := make([]*StressResult, instances)
	errs := make([]error, instances)
	next := make(chan int, instances)
	for i := 0; i < instances; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + uint64(i)
				results[i], errs[i] = RunStress(c)
			}
		}()
	}
	wg.Wait()
	var firstErr error
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed > 0 {
		return results, fmt.Errorf("chaos: %d/%d stress instances failed: %w", failed, instances, firstErr)
	}
	return results, nil
}
