// Package memalloc models the process virtual address space and the
// special memory allocation the paper's translated programs use
// (§III-D): ordinary heap allocations via malloc-style bump allocation,
// and direct-store allocations via mmap with MAP_FIXED semantics placed
// in a reserved high-order address range. Data in that range is homed in
// the GPU L2: the TLB recognises it by comparing high-order virtual
// address bits.
//
// The allocator enforces the translator's non-overlap invariant: each
// fixed mapping must be disjoint from every existing region, and
// consecutive direct-store allocations advance a bump pointer so "there
// is no overlapping starting virtual addresses for all variables"
// (§III-C).
package memalloc

import (
	"fmt"
	"sort"

	"dstore/internal/memsys"
)

// PageSize is the virtual memory page size.
const PageSize = 4096

// Address-space layout. The direct-store arena sits at the top of the
// canonical user range so a single high-order-bits comparison identifies
// it (paper §III-E: "we reserve bits of the virtual address space").
const (
	// HeapBase is where malloc-style allocations start.
	HeapBase memsys.Addr = 0x0000_0000_1000_0000
	// DirectStoreBase is the bottom of the reserved direct-store range.
	// Any VA at or above this is homed in the GPU L2.
	DirectStoreBase memsys.Addr = 0x0000_7f00_0000_0000
	// DirectStoreLimit is the exclusive top of the reserved range (1 TiB
	// of VA, far beyond any workload's need).
	DirectStoreLimit memsys.Addr = DirectStoreBase + (1 << 40)
)

// RegionKind classifies an allocation.
type RegionKind uint8

const (
	// KindHeap is an ordinary malloc allocation.
	KindHeap RegionKind = iota
	// KindDirect is a direct-store (GPU-homed) allocation.
	KindDirect
)

// String names the kind.
func (k RegionKind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindDirect:
		return "direct"
	default:
		return fmt.Sprintf("RegionKind(%d)", uint8(k))
	}
}

// Region is one allocated range [Base, Base+Size).
type Region struct {
	Base memsys.Addr
	Size uint64
	Kind RegionKind
	Name string
}

// End returns the exclusive end address.
func (r Region) End() memsys.Addr { return r.Base + memsys.Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a memsys.Addr) bool { return a >= r.Base && a < r.End() }

// Space is a process address space: a set of disjoint regions plus bump
// pointers for the heap and the direct-store arena.
type Space struct {
	regions  []Region // sorted by Base
	heapNext memsys.Addr
	dsNext   memsys.Addr
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{heapNext: HeapBase, dsNext: DirectStoreBase}
}

func alignUp(a memsys.Addr, align uint64) memsys.Addr {
	return memsys.Addr((uint64(a) + align - 1) &^ (align - 1))
}

// overlapsExisting reports whether [base, base+size) intersects any
// region.
func (s *Space) overlapsExisting(base memsys.Addr, size uint64) bool {
	end := base + memsys.Addr(size)
	for _, r := range s.regions {
		if base < r.End() && r.Base < end {
			return true
		}
	}
	return false
}

func (s *Space) insert(r Region) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base >= r.Base })
	s.regions = append(s.regions, Region{})
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
}

// Malloc allocates size bytes on the ordinary heap, line-aligned so a
// variable never shares a cache line with a neighbour (matching how the
// benchmarks' large arrays behave).
func (s *Space) Malloc(size uint64, name string) (memsys.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("memalloc: zero-size malloc for %q", name)
	}
	base := alignUp(s.heapNext, memsys.LineSize)
	if s.overlapsExisting(base, size) {
		return 0, fmt.Errorf("memalloc: heap bump collided at %#x for %q", uint64(base), name)
	}
	s.insert(Region{Base: base, Size: size, Kind: KindHeap, Name: name})
	s.heapNext = base + memsys.Addr(size)
	return base, nil
}

// MmapFixed maps size bytes at exactly addr (MAP_FIXED semantics minus
// the silent-clobber footgun: overlap is an error, because the
// translator guarantees disjoint starting addresses). Mappings inside
// the reserved range become direct-store regions.
func (s *Space) MmapFixed(addr memsys.Addr, size uint64, name string) (memsys.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("memalloc: zero-size mmap for %q", name)
	}
	if uint64(addr)%PageSize != 0 {
		return 0, fmt.Errorf("memalloc: mmap address %#x not page-aligned for %q", uint64(addr), name)
	}
	kind := KindHeap
	if addr >= DirectStoreBase {
		if addr+memsys.Addr(size) > DirectStoreLimit {
			return 0, fmt.Errorf("memalloc: mapping %q exceeds the direct-store arena", name)
		}
		kind = KindDirect
	}
	if s.overlapsExisting(addr, size) {
		return 0, fmt.Errorf("memalloc: fixed mapping %q at %#x overlaps an existing region", name, uint64(addr))
	}
	s.insert(Region{Base: addr, Size: size, Kind: kind, Name: name})
	if kind == KindDirect {
		end := alignUp(addr+memsys.Addr(size), PageSize)
		if end > s.dsNext {
			s.dsNext = end
		}
	}
	return addr, nil
}

// AllocDirect places size bytes at the next free page-aligned address in
// the direct-store arena, exactly what the translator emits when it
// rewrites malloc/cudaMalloc to mmap and "increments the starting
// virtual address by the memory size needed by the variable" (§III-C).
func (s *Space) AllocDirect(size uint64, name string) (memsys.Addr, error) {
	base := alignUp(s.dsNext, PageSize)
	return s.MmapFixed(base, size, name)
}

// InDirectRegion reports whether a falls in the reserved high-order
// range — the exact comparison the modified TLB performs.
func InDirectRegion(a memsys.Addr) bool {
	return a >= DirectStoreBase && a < DirectStoreLimit
}

// RegionFor returns the region containing a.
func (s *Space) RegionFor(a memsys.Addr) (Region, bool) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > a })
	if i < len(s.regions) && s.regions[i].Contains(a) {
		return s.regions[i], true
	}
	return Region{}, false
}

// RegionByName returns the first region allocated under name.
func (s *Space) RegionByName(name string) (Region, bool) {
	for _, r := range s.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of all regions in address order.
func (s *Space) Regions() []Region {
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// TotalMapped returns the number of mapped bytes of the given kind.
func (s *Space) TotalMapped(kind RegionKind) uint64 {
	var n uint64
	for _, r := range s.regions {
		if r.Kind == kind {
			n += r.Size
		}
	}
	return n
}
