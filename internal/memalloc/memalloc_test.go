package memalloc

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
)

func TestMallocSequentialDisjoint(t *testing.T) {
	s := NewSpace()
	a, err := s.Malloc(1000, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Malloc(1000, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b < a+1000 {
		t.Errorf("allocations overlap: a=%#x b=%#x", uint64(a), uint64(b))
	}
	if uint64(a)%memsys.LineSize != 0 || uint64(b)%memsys.LineSize != 0 {
		t.Error("heap allocations not line-aligned")
	}
}

func TestMallocZeroSizeErrors(t *testing.T) {
	s := NewSpace()
	if _, err := s.Malloc(0, "z"); err == nil {
		t.Error("zero-size malloc succeeded")
	}
}

func TestAllocDirectLandsInReservedRange(t *testing.T) {
	s := NewSpace()
	a, err := s.AllocDirect(4096, "v")
	if err != nil {
		t.Fatal(err)
	}
	if !InDirectRegion(a) {
		t.Errorf("direct allocation at %#x outside reserved range", uint64(a))
	}
	r, ok := s.RegionFor(a)
	if !ok || r.Kind != KindDirect {
		t.Errorf("region kind %v, want direct", r.Kind)
	}
}

func TestAllocDirectNeverOverlaps(t *testing.T) {
	s := NewSpace()
	var regions []Region
	for i := 0; i < 20; i++ {
		sz := uint64(1000*i + 1)
		a, err := s.AllocDirect(sz, "v")
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, Region{Base: a, Size: sz})
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			ri, rj := regions[i], regions[j]
			if ri.Base < rj.End() && rj.Base < ri.End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestMmapFixedRejectsOverlap(t *testing.T) {
	s := NewSpace()
	if _, err := s.MmapFixed(DirectStoreBase, 2*PageSize, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MmapFixed(DirectStoreBase+PageSize, PageSize, "b"); err == nil {
		t.Error("overlapping fixed mapping succeeded")
	}
	// Directly adjacent is fine.
	if _, err := s.MmapFixed(DirectStoreBase+2*PageSize, PageSize, "c"); err != nil {
		t.Errorf("adjacent mapping failed: %v", err)
	}
}

func TestMmapFixedRejectsUnaligned(t *testing.T) {
	s := NewSpace()
	if _, err := s.MmapFixed(DirectStoreBase+1, PageSize, "x"); err == nil {
		t.Error("unaligned fixed mapping succeeded")
	}
}

func TestMmapFixedRejectsBeyondArena(t *testing.T) {
	s := NewSpace()
	if _, err := s.MmapFixed(DirectStoreLimit-PageSize, 2*PageSize, "x"); err == nil {
		t.Error("mapping past the arena limit succeeded")
	}
}

func TestMmapFixedOutsideArenaIsHeapKind(t *testing.T) {
	s := NewSpace()
	a, err := s.MmapFixed(0x2000_0000, PageSize, "low")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.RegionFor(a)
	if r.Kind != KindHeap {
		t.Errorf("low fixed mapping kind %v, want heap", r.Kind)
	}
}

func TestInDirectRegionBoundaries(t *testing.T) {
	if InDirectRegion(DirectStoreBase - 1) {
		t.Error("address below base classified direct")
	}
	if !InDirectRegion(DirectStoreBase) {
		t.Error("base address not classified direct")
	}
	if !InDirectRegion(DirectStoreLimit - 1) {
		t.Error("last arena address not classified direct")
	}
	if InDirectRegion(DirectStoreLimit) {
		t.Error("limit address classified direct")
	}
}

func TestRegionForAndByName(t *testing.T) {
	s := NewSpace()
	a, _ := s.Malloc(500, "alpha")
	d, _ := s.AllocDirect(500, "delta")
	if r, ok := s.RegionFor(a + 499); !ok || r.Name != "alpha" {
		t.Error("RegionFor missed last byte of alpha")
	}
	if _, ok := s.RegionFor(a + 500); ok {
		t.Error("RegionFor matched one past the end")
	}
	if r, ok := s.RegionByName("delta"); !ok || r.Base != d {
		t.Error("RegionByName failed")
	}
	if _, ok := s.RegionByName("missing"); ok {
		t.Error("RegionByName matched a missing name")
	}
}

func TestTotalMapped(t *testing.T) {
	s := NewSpace()
	s.Malloc(100, "h1")
	s.Malloc(200, "h2")
	s.AllocDirect(1000, "d1")
	if s.TotalMapped(KindHeap) != 300 {
		t.Errorf("heap total %d, want 300", s.TotalMapped(KindHeap))
	}
	if s.TotalMapped(KindDirect) != 1000 {
		t.Errorf("direct total %d, want 1000", s.TotalMapped(KindDirect))
	}
}

func TestRegionsSortedCopy(t *testing.T) {
	s := NewSpace()
	s.AllocDirect(10, "d")
	s.Malloc(10, "h")
	rs := s.Regions()
	if len(rs) != 2 {
		t.Fatalf("got %d regions", len(rs))
	}
	if rs[0].Base > rs[1].Base {
		t.Error("regions not sorted by base")
	}
	rs[0].Name = "mutated"
	if r, _ := s.RegionByName("mutated"); r.Name == "mutated" {
		t.Error("Regions returned a live reference")
	}
}

func TestRegionKindString(t *testing.T) {
	if KindHeap.String() != "heap" || KindDirect.String() != "direct" {
		t.Error("kind strings wrong")
	}
	if RegionKind(9).String() == "" {
		t.Error("unknown kind empty string")
	}
}

// Property: any interleaving of mallocs and direct allocations keeps all
// regions pairwise disjoint and each in its proper arena.
func TestPropertyAllocationsDisjoint(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace()
		for _, op := range ops {
			size := uint64(op%8192) + 1
			var err error
			if op%2 == 0 {
				_, err = s.Malloc(size, "h")
			} else {
				_, err = s.AllocDirect(size, "d")
			}
			if err != nil {
				return false
			}
		}
		rs := s.Regions()
		for i := 1; i < len(rs); i++ {
			if rs[i-1].End() > rs[i].Base {
				return false
			}
		}
		for _, r := range rs {
			inDS := InDirectRegion(r.Base)
			if (r.Kind == KindDirect) != inDS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
