package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestJobPanicRecovered checks a panicking simulation becomes a failed
// job carrying the stack trace while the worker stays alive for the
// next job.
func TestJobPanicRecovered(t *testing.T) {
	calls := 0
	stub := func(ctx context.Context, j *job) ([]byte, error) {
		calls++
		if calls == 1 {
			panic("synthetic engine explosion")
		}
		return []byte(`{"stub":true}`), nil
	}
	base := startServer(t, testServer(t, Options{Workers: 1}, stub))

	bad := post(t, base, `{"bench":"VA"}`)
	if bad.code != http.StatusAccepted {
		t.Fatalf("submit: %d", bad.code)
	}
	st := waitStatus(t, base, bad.ID, "failed", 10*time.Second)
	if !strings.Contains(st.Error, "synthetic engine explosion") ||
		!strings.Contains(st.Error, "goroutine") {
		t.Fatalf("error = %q, want panic message with stack trace", st.Error)
	}

	// The same worker must survive to run the next job.
	good := post(t, base, `{"bench":"NN"}`)
	waitStatus(t, base, good.ID, "done", 10*time.Second)

	m := metricsMap(t, base)
	if m["dstore_serve_jobs_panicked_total"] != 1 {
		t.Fatalf("panicked = %d, want 1", m["dstore_serve_jobs_panicked_total"])
	}
	if m["dstore_serve_jobs_failed_total"] != 1 {
		t.Fatalf("failed = %d, want 1", m["dstore_serve_jobs_failed_total"])
	}
}

// TestChaosEndpointDisabled checks /v1/chaos is rejected unless the
// operator opted in.
func TestChaosEndpointDisabled(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: 1}))
	resp, err := http.Post(base+"/v1/chaos", "application/json",
		strings.NewReader(`{"seed":1,"profile":"light"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("chaos on disabled server = %d, want 403", resp.StatusCode)
	}
}

// TestChaosEndpoint runs a small seeded soak through POST /v1/chaos
// and checks the response shape and the fault counters it feeds.
func TestChaosEndpoint(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: 2, EnableChaos: true}))

	body := `{"seed":7,"profile":"heavy","ops":400,"rounds":4,"lines":64,"instances":2,"workers":2}`
	resp, err := http.Post(base+"/v1/chaos", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos soak = %d", resp.StatusCode)
	}
	var out struct {
		Profile   string `json:"profile"`
		Mode      string `json:"mode"`
		OK        bool   `json:"ok"`
		Failed    int    `json:"failed"`
		Instances []struct {
			Seed       uint64   `json:"seed"`
			OK         bool     `json:"ok"`
			Faults     uint64   `json:"faults_injected"`
			Transcript string   `json:"transcript"`
			Violations []string `json:"violations"`
		} `json:"instances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.Failed != 0 || out.Profile != "heavy" || len(out.Instances) != 2 {
		t.Fatalf("soak response: ok=%v failed=%d profile=%q instances=%d",
			out.OK, out.Failed, out.Profile, len(out.Instances))
	}
	var faults uint64
	for _, in := range out.Instances {
		if !in.OK || len(in.Violations) != 0 || in.Transcript == "" {
			t.Fatalf("instance %d: %+v", in.Seed, in)
		}
		faults += in.Faults
	}
	if faults == 0 {
		t.Fatal("heavy profile injected no faults")
	}
	m := metricsMap(t, base)
	if m["dstore_chaos_faults_injected_total"] != faults {
		t.Fatalf("faults metric = %d, want %d", m["dstore_chaos_faults_injected_total"], faults)
	}

	// Unknown profiles are a client error, not a crash.
	resp2, err := http.Post(base+"/v1/chaos", "application/json",
		strings.NewReader(`{"seed":1,"profile":"nonsense"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown profile = %d, want 400", resp2.StatusCode)
	}
}
