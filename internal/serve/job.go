// Package serve turns the simulator into a long-running service: an
// HTTP JSON API over a bounded job queue with backpressure, a worker
// pool that reuses the bench layer's per-run system isolation, and a
// content-addressed result cache.
//
// A job is a pure function of its specification — each run builds a
// private core.System, so two jobs with the same canonical spec must
// produce byte-identical results. The service exploits that three
// ways: the job ID is the SHA-256 of the canonical spec, duplicate
// in-flight submissions coalesce onto the running job
// (singleflight), and completed results are served from an LRU cache
// keyed by the same hash.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"dstore/internal/bench"
	"dstore/internal/cache"
	"dstore/internal/core"
)

// JobSpec is one simulation request: a Table II benchmark, a coherence
// mode, an input size, and optional configuration overrides on top of
// the Table I defaults. Mode and Input default to "direct-store" and
// "small" when empty.
type JobSpec struct {
	Bench  string          `json:"bench"`
	Mode   string          `json:"mode,omitempty"`
	Input  string          `json:"input,omitempty"`
	Config *ConfigOverride `json:"config,omitempty"`
	// Trace additionally records a Chrome trace-event capture of the
	// run, retrievable from GET /v1/runs/{id}/trace. Tracing never
	// changes the simulated result, but a traced job hashes to a
	// different ID than its untraced twin because the artifact set
	// differs.
	Trace bool `json:"trace,omitempty"`
}

// ConfigOverride selects the configuration knobs the API exposes on
// top of core.DefaultConfig. Pointer fields distinguish "absent" from
// a zero value; absent fields keep the Table I default.
type ConfigOverride struct {
	SMs              *int    `json:"sms,omitempty"`
	MaxWarpsPerSM    *int    `json:"max_warps_per_sm,omitempty"`
	GPUL2Bytes       *int    `json:"gpu_l2_bytes,omitempty"`
	GPUL2Ways        *int    `json:"gpu_l2_ways,omitempty"`
	GPUL2Slices      *int    `json:"gpu_l2_slices,omitempty"`
	GPUL2Policy      *string `json:"gpu_l2_policy,omitempty"`
	NoC              *string `json:"noc,omitempty"`
	PrefetchDepth    *int    `json:"prefetch_depth,omitempty"`
	DirectGetx       *bool   `json:"direct_getx,omitempty"`
	DirectOverXbar   *bool   `json:"direct_over_xbar,omitempty"`
	PushWriteThrough *bool   `json:"push_write_through,omitempty"`
	RegionDirectory  *bool   `json:"region_directory,omitempty"`
}

// apply lays the overrides over cfg.
func (o *ConfigOverride) apply(cfg core.Config) core.Config {
	if o == nil {
		return cfg
	}
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setBool := func(dst *bool, src *bool) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&cfg.SMs, o.SMs)
	setInt(&cfg.MaxWarpsPerSM, o.MaxWarpsPerSM)
	setInt(&cfg.GPUL2Bytes, o.GPUL2Bytes)
	setInt(&cfg.GPUL2Ways, o.GPUL2Ways)
	setInt(&cfg.GPUL2Slices, o.GPUL2Slices)
	if o.GPUL2Policy != nil {
		cfg.GPUL2Policy = cache.PolicyKind(*o.GPUL2Policy)
	}
	if o.NoC != nil {
		cfg.NoC = *o.NoC
	}
	setInt(&cfg.PrefetchDepth, o.PrefetchDepth)
	setBool(&cfg.DirectGetx, o.DirectGetx)
	setBool(&cfg.DirectOverXbar, o.DirectOverXbar)
	setBool(&cfg.PushWriteThrough, o.PushWriteThrough)
	setBool(&cfg.RegionDirectory, o.RegionDirectory)
	return cfg
}

// Normalize returns the canonical form of the spec: benchmark code
// upper-cased and verified against Table II, mode and input resolved
// to their canonical names (applying the defaults), and an all-absent
// Config collapsed to nil so it hashes identically to an omitted one.
func (s JobSpec) Normalize() (JobSpec, error) {
	n := s
	n.Bench = strings.ToUpper(strings.TrimSpace(s.Bench))
	known := false
	for _, c := range bench.Codes() {
		if c == n.Bench {
			known = true
			break
		}
	}
	if !known {
		return n, fmt.Errorf("serve: unknown benchmark %q (see /v1/benchmarks)", s.Bench)
	}

	switch strings.ToLower(strings.TrimSpace(s.Mode)) {
	case "", "direct-store":
		n.Mode = core.ModeDirectStore.String()
	case "ccsm":
		n.Mode = core.ModeCCSM.String()
	case "standalone":
		n.Mode = core.ModeStandalone.String()
	default:
		return n, fmt.Errorf("serve: unknown mode %q (want ccsm, direct-store or standalone)", s.Mode)
	}

	switch strings.ToLower(strings.TrimSpace(s.Input)) {
	case "", "small":
		n.Input = bench.Small.String()
	case "big":
		n.Input = bench.Big.String()
	default:
		return n, fmt.Errorf("serve: unknown input %q (want small or big)", s.Input)
	}

	if n.Config != nil && reflect.DeepEqual(n.Config, &ConfigOverride{}) {
		n.Config = nil
	}
	return n, nil
}

// mode maps the normalized mode name back to the core enum. The spec
// must be normalized first.
func (s JobSpec) mode() core.Mode {
	switch s.Mode {
	case core.ModeCCSM.String():
		return core.ModeCCSM
	case core.ModeStandalone.String():
		return core.ModeStandalone
	default:
		return core.ModeDirectStore
	}
}

// input maps the normalized input name back to the bench enum.
func (s JobSpec) input() bench.Input {
	if s.Input == bench.Big.String() {
		return bench.Big
	}
	return bench.Small
}

// BuildConfig resolves the normalized spec to a validated full-system
// configuration: Table I defaults for the spec's mode with the
// overrides applied.
func (s JobSpec) BuildConfig() (core.Config, error) {
	cfg := s.Config.apply(core.DefaultConfig(s.mode()))
	if s.Config != nil && s.Config.GPUL2Policy != nil {
		switch cache.PolicyKind(*s.Config.GPUL2Policy) {
		case cache.PolicyLRU, cache.PolicyTreePLRU, cache.PolicyRandom, cache.PolicySRRIP:
		default:
			return cfg, fmt.Errorf("serve: unknown gpu_l2_policy %q", *s.Config.GPUL2Policy)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Canonical returns the canonical serialization of the normalized
// spec: the deterministic JSON encoding the job hash is computed over.
func (s JobSpec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// ID returns the content address of the normalized spec: the SHA-256
// of its canonical serialization, hex-encoded. Two specs that
// normalize identically always share an ID, which is what makes the
// result cache and singleflight coalescing sound.
func (s JobSpec) ID() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
