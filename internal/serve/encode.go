package serve

import (
	"encoding/json"

	"dstore/internal/bench"
)

// ResultJSON is the canonical wire form of a bench.Result. The service
// and dstore-sim -json both emit it, so API responses and CLI output
// are directly diffable. Field order is fixed by the struct, and
// encoding/json is deterministic over it, so equal Results encode to
// byte-identical documents — the property the content-addressed cache
// serves back.
type ResultJSON struct {
	Bench       string   `json:"bench"`
	Mode        string   `json:"mode"`
	Input       string   `json:"input"`
	Ticks       uint64   `json:"ticks"`
	PhaseTicks  []uint64 `json:"phase_ticks"`
	L2Accesses  uint64   `json:"l2_accesses"`
	L2Misses    uint64   `json:"l2_misses"`
	MissRate    float64  `json:"miss_rate"`
	Pushes      uint64   `json:"pushes"`
	XbarBytes   uint64   `json:"xbar_bytes"`
	DirectBytes uint64   `json:"direct_bytes"`
}

// NewResultJSON converts a bench.Result to its wire form.
func NewResultJSON(r bench.Result) ResultJSON {
	phases := make([]uint64, len(r.PhaseTicks))
	for i, p := range r.PhaseTicks {
		phases[i] = uint64(p)
	}
	return ResultJSON{
		Bench:       r.Code,
		Mode:        r.Mode.String(),
		Input:       r.In.String(),
		Ticks:       uint64(r.Ticks),
		PhaseTicks:  phases,
		L2Accesses:  r.L2Accesses,
		L2Misses:    r.L2Misses,
		MissRate:    r.MissRate,
		Pushes:      r.Pushes,
		XbarBytes:   r.XbarBytes,
		DirectBytes: r.DirectBytes,
	}
}

// EncodeResult renders the canonical JSON document for one run.
func EncodeResult(r bench.Result) ([]byte, error) {
	return json.Marshal(NewResultJSON(r))
}

// ComparisonJSON is the canonical wire form of a bench.Comparison: the
// two runs plus the paper's derived metrics.
type ComparisonJSON struct {
	Bench         string     `json:"bench"`
	Input         string     `json:"input"`
	CCSM          ResultJSON `json:"ccsm"`
	DirectStore   ResultJSON `json:"direct_store"`
	Speedup       float64    `json:"speedup"`
	MissRateDelta float64    `json:"miss_rate_delta"`
}

// EncodeComparison renders the canonical JSON document for one
// CCSM-vs-direct-store pair.
func EncodeComparison(c bench.Comparison) ([]byte, error) {
	return json.Marshal(ComparisonJSON{
		Bench:         c.Code,
		Input:         c.In.String(),
		CCSM:          NewResultJSON(c.CCSM),
		DirectStore:   NewResultJSON(c.DS),
		Speedup:       c.Speedup(),
		MissRateDelta: c.MissRateDelta(),
	})
}
