package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"dstore/internal/bench"
	"dstore/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files from current simulator output")

// TestGoldenResultsPinned runs every Table II benchmark under both
// coherence modes (small inputs) and compares the canonical result
// encodings byte-for-byte against a pinned golden file. This is the
// guard that chaos instrumentation stays inert when disabled: any
// behavioural drift — one tick, one message — shows up as a diff.
//
// Regenerate deliberately with: go test ./internal/serve -run Golden -update
func TestGoldenResultsPinned(t *testing.T) {
	type job struct {
		code string
		mode core.Mode
	}
	var jobs []job
	for _, code := range bench.Codes() {
		for _, mode := range []core.Mode{core.ModeCCSM, core.ModeDirectStore} {
			jobs = append(jobs, job{code, mode})
		}
	}

	lines := make([][]byte, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := bench.Run(j.code, j.mode, bench.Small)
			if err != nil {
				t.Errorf("%s/%s: %v", j.code, j.mode, err)
				return
			}
			enc, err := EncodeResult(res)
			if err != nil {
				t.Errorf("%s/%s: %v", j.code, j.mode, err)
				return
			}
			lines[i] = enc
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var got bytes.Buffer
	for _, l := range lines {
		got.Write(l)
		got.WriteByte('\n')
	}

	path := filepath.Join("testdata", "golden_small.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d runs)", path, len(jobs))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if bytes.Equal(got.Bytes(), want) {
		return
	}
	gotLines := bytes.Split(got.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := range jobs {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s/%s drifted:\n got: %s\nwant: %s",
				jobs[i].code, jobs[i].mode, g, w)
		}
	}
	if !t.Failed() {
		t.Fatalf("golden file %s differs (line count or trailing bytes)", path)
	}
}
