package serve

import (
	"testing"

	"dstore/internal/core"
)

func TestNormalizeDefaultsAndCase(t *testing.T) {
	n, err := JobSpec{Bench: " mt "}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Bench != "MT" || n.Mode != "direct-store" || n.Input != "small" {
		t.Fatalf("normalized = %+v", n)
	}
	if _, err := (JobSpec{Bench: "nope"}).Normalize(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := (JobSpec{Bench: "MT", Mode: "mesi"}).Normalize(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := (JobSpec{Bench: "MT", Input: "huge"}).Normalize(); err == nil {
		t.Fatal("unknown input accepted")
	}
}

// TestIDContentAddressing checks that specs that mean the same job
// hash identically and different jobs do not.
func TestIDContentAddressing(t *testing.T) {
	id := func(s JobSpec) string {
		n, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		i, err := n.ID()
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	base := id(JobSpec{Bench: "MM", Mode: "direct-store", Input: "small"})
	if got := id(JobSpec{Bench: "mm"}); got != base {
		t.Fatal("defaults and case produce a different ID")
	}
	// An all-absent override collapses to the no-override hash.
	if got := id(JobSpec{Bench: "MM", Config: &ConfigOverride{}}); got != base {
		t.Fatal("empty config override changed the ID")
	}
	if got := id(JobSpec{Bench: "MM", Mode: "ccsm"}); got == base {
		t.Fatal("different mode hashed identically")
	}
	four := 4
	if got := id(JobSpec{Bench: "MM", Config: &ConfigOverride{PrefetchDepth: &four}}); got == base {
		t.Fatal("config override hashed identically to default")
	}
}

func TestBuildConfigOverrides(t *testing.T) {
	policy := "srrip"
	ring := "ring"
	slices := 8
	n, err := JobSpec{Bench: "MT", Mode: "ccsm",
		Config: &ConfigOverride{GPUL2Policy: &policy, NoC: &ring, GPUL2Slices: &slices}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := n.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeCCSM || string(cfg.GPUL2Policy) != "srrip" || cfg.NoC != "ring" || cfg.GPUL2Slices != 8 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}

	bad := 3 // not a power of two; rejected by core.Config.Validate
	n2, err := JobSpec{Bench: "MT", Config: &ConfigOverride{GPUL2Slices: &bad}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.BuildConfig(); err == nil {
		t.Fatal("invalid slice count accepted")
	}
	nonsense := "mru"
	n3, err := JobSpec{Bench: "MT", Config: &ConfigOverride{GPUL2Policy: &nonsense}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n3.BuildConfig(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
