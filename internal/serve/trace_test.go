package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTraceEndpoint drives a real traced run through the API: submit
// with "trace": true, wait for completion, fetch the Chrome trace, and
// check it parses the way Perfetto would. A second identical traced
// submission must serve the identical bytes from cache.
func TestTraceEndpoint(t *testing.T) {
	srv := mustNew(t, Options{Workers: 2})
	base := startServer(t, srv)

	spec := `{"bench": "MT", "input": "small", "trace": true}`
	sub := post(t, base, spec)
	if sub.code != http.StatusAccepted && sub.code != http.StatusOK {
		t.Fatalf("submit: %d", sub.code)
	}
	waitStatus(t, base, sub.ID, "done", 30*time.Second)

	code, body := getRaw(t, base+"/v1/runs/"+sub.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d: %s", code, body)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Resubmission answers from cache and the trace stays available.
	again := post(t, base, spec)
	if again.code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit not served from cache: code=%d cached=%v", again.code, again.Cached)
	}
	code2, body2 := getRaw(t, base+"/v1/runs/"+sub.ID+"/trace")
	if code2 != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("repeated trace fetch differs: %d, %d vs %d bytes", code2, len(body2), len(body))
	}

	// An untraced twin has a different ID and no trace artifact.
	plain := post(t, base, `{"bench": "MT", "input": "small"}`)
	if plain.ID == sub.ID {
		t.Fatal("traced and untraced specs share an ID")
	}
	waitStatus(t, base, plain.ID, "done", 30*time.Second)
	code3, _ := getRaw(t, base+"/v1/runs/"+plain.ID+"/trace")
	if code3 != http.StatusNotFound {
		t.Fatalf("trace of untraced run: got %d, want 404", code3)
	}
}

// TestTraceUnknownRun checks the 404 path for never-seen IDs.
func TestTraceUnknownRun(t *testing.T) {
	srv := mustNew(t, Options{Workers: 1})
	base := startServer(t, srv)
	code, _ := getRaw(t, base+"/v1/runs/deadbeef/trace")
	if code != http.StatusNotFound {
		t.Fatalf("got %d, want 404", code)
	}
}

// TestMetricsHistograms checks the Prometheus histogram rendering:
// after one executed job, /metrics carries cumulative le buckets plus
// _sum and _count for the latency histograms, and /v1/stats carries
// the matching sample counts.
func TestMetricsHistograms(t *testing.T) {
	srv := mustNew(t, Options{Workers: 1})
	base := startServer(t, srv)

	sub := post(t, base, `{"bench": "MT", "input": "small", "mode": "direct-store"}`)
	waitStatus(t, base, sub.ID, "done", 30*time.Second)

	code, body := getRaw(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	for _, name := range []string{
		"dstore_sim_gpu_load_latency_ticks",
		"dstore_sim_cpu_store_latency_ticks",
		"dstore_sim_push_to_first_use_ticks",
	} {
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Errorf("missing histogram TYPE line for %s", name)
		}
		if !strings.Contains(text, name+`_bucket{le="+Inf"}`) {
			t.Errorf("missing +Inf bucket for %s", name)
		}
		if !strings.Contains(text, name+"_sum ") || !strings.Contains(text, name+"_count ") {
			t.Errorf("missing _sum/_count for %s", name)
		}
	}
	// Bucket counts must be cumulative: the +Inf bucket equals _count.
	if !strings.Contains(text, `dstore_sim_gpu_load_latency_ticks_bucket{le="`) {
		t.Error("gpu load histogram has no finite buckets after an executed run")
	}

	m := metricsMap(t, base)
	if m["dstore_sim_gpu_load_latency_ticks"] == 0 {
		t.Error("/v1/stats gpu load histogram count is zero after an executed run")
	}
}
