package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"dstore/internal/bench"
)

// mustNew is New for tests that expect construction to succeed (it
// only fails when a persistent store directory cannot be opened).
func mustNew(t *testing.T, opt Options) *Server {
	t.Helper()
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// testServer is newServer (the injectable-run-function hook) with the
// same must semantics.
func testServer(t *testing.T, opt Options, runFn func(context.Context, *job) ([]byte, error)) *Server {
	t.Helper()
	srv, err := newServer(opt, runFn)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// startServer boots a Server behind httptest and tears both down with
// the test.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

type testResponse struct {
	code    int
	headers http.Header
	ID      string          `json:"id"`
	Status  string          `json:"status"`
	Cached  bool            `json:"cached"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
}

func post(t *testing.T, base, body string) testResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeResponse(t, resp)
}

func get(t *testing.T, url string) testResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeResponse(t, resp)
}

func decodeResponse(t *testing.T, resp *http.Response) testResponse {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := testResponse{code: resp.StatusCode, headers: resp.Header}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("bad response body %q: %v", b, err)
	}
	return out
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitStatus polls a run until it reaches a terminal state or the
// wanted state, failing the test on timeout.
func waitStatus(t *testing.T, base, id, want string, timeout time.Duration) testResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := get(t, base+"/v1/runs/"+id)
		if st.Status == want {
			return st
		}
		switch st.Status {
		case "done", "failed", "cancelled":
			t.Fatalf("run %s reached %q (error %q), want %q", id, st.Status, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %q after %v, want %q", id, st.Status, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricsMap reads /v1/stats (the stats.Set JSON view of /metrics).
func metricsMap(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	code, b := getRaw(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d: %s", code, b)
	}
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("/v1/stats not a JSON object: %v", err)
	}
	return m
}

// blockingStub returns a run function that parks jobs until release is
// closed (or their context dies), plus a channel that reports each job
// starting.
func blockingStub(release chan struct{}) (func(context.Context, *job) ([]byte, error), chan string) {
	started := make(chan string, 64)
	return func(ctx context.Context, j *job) ([]byte, error) {
		started <- j.id
		select {
		case <-release:
			return []byte(`{"stub":"` + j.spec.Bench + `"}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, started
}

// TestEndToEndSubmitPollResult runs a real small benchmark through the
// full HTTP path under both coherence modes.
func TestEndToEndSubmitPollResult(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: 2}))
	for _, mode := range []string{"ccsm", "direct-store"} {
		spec := fmt.Sprintf(`{"bench":"MT","mode":%q,"input":"small"}`, mode)
		sub := post(t, base, spec)
		if sub.code != http.StatusAccepted {
			t.Fatalf("submit (%s): %d", mode, sub.code)
		}
		st := waitStatus(t, base, sub.ID, "done", 60*time.Second)
		var res ResultJSON
		if err := json.Unmarshal(st.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Bench != "MT" || res.Mode != mode || res.Input != "small" || res.Ticks == 0 {
			t.Fatalf("result (%s) = %+v", mode, res)
		}
		// The raw result endpoint serves the same document.
		code, raw := getRaw(t, base+"/v1/runs/"+sub.ID+"/result")
		if code != http.StatusOK || !bytes.Equal(raw, st.Result) {
			t.Fatalf("result endpoint (%d) diverges from status result", code)
		}
	}
}

// TestAllBenchmarksBothModes submits every Table II benchmark under
// both ccsm and direct-store (small inputs) and requires every job to
// complete with a well-formed result — the service equivalent of a
// full Fig. 4 sweep.
func TestAllBenchmarksBothModes(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: runtime.GOMAXPROCS(0), QueueDepth: 128}))
	type submitted struct{ id, code, mode string }
	var subs []submitted
	for _, code := range bench.Codes() {
		for _, mode := range []string{"ccsm", "direct-store"} {
			sub := post(t, base, fmt.Sprintf(`{"bench":%q,"mode":%q,"input":"small"}`, code, mode))
			if sub.code != http.StatusAccepted && sub.code != http.StatusOK {
				t.Fatalf("submit %s/%s: %d %s", code, mode, sub.code, sub.Error)
			}
			subs = append(subs, submitted{sub.ID, code, mode})
		}
	}
	for _, s := range subs {
		st := waitStatus(t, base, s.id, "done", 3*time.Minute)
		var res ResultJSON
		if err := json.Unmarshal(st.Result, &res); err != nil {
			t.Fatalf("%s/%s: %v", s.code, s.mode, err)
		}
		if res.Bench != s.code || res.Mode != s.mode || res.Ticks == 0 {
			t.Fatalf("%s/%s: bad result %+v", s.code, s.mode, res)
		}
	}
	m := metricsMap(t, base)
	if m["dstore_serve_jobs_executed_total"] != uint64(len(subs)) {
		t.Fatalf("executed %d jobs, want %d", m["dstore_serve_jobs_executed_total"], len(subs))
	}
}

// TestCacheHitDeterminism checks the content-addressed cache: an
// identical resubmission is answered from cache with byte-identical
// JSON and no second simulation, and a fresh server instance produces
// the same bytes again.
func TestCacheHitDeterminism(t *testing.T) {
	spec := `{"bench":"NN","mode":"ccsm","input":"small"}`
	base := startServer(t, mustNew(t, Options{Workers: 2}))

	first := post(t, base, spec)
	if first.code != http.StatusAccepted {
		t.Fatalf("first submit: %d", first.code)
	}
	waitStatus(t, base, first.ID, "done", 60*time.Second)
	_, result1 := getRaw(t, base+"/v1/runs/"+first.ID+"/result")

	second := post(t, base, spec)
	if second.code != http.StatusOK || !second.Cached || second.ID != first.ID {
		t.Fatalf("resubmission not a cache hit: code %d cached %v id %s", second.code, second.Cached, second.ID)
	}
	if !bytes.Equal([]byte(second.Result), result1) {
		t.Fatalf("cached result differs:\n first: %s\nsecond: %s", result1, second.Result)
	}
	m := metricsMap(t, base)
	if m["dstore_serve_jobs_executed_total"] != 1 {
		t.Fatalf("executed %d simulations, want exactly 1", m["dstore_serve_jobs_executed_total"])
	}
	if m["dstore_serve_cache_hits_total"] != 1 || m["dstore_serve_cache_misses_total"] != 1 {
		t.Fatalf("cache hits %d misses %d, want 1 and 1",
			m["dstore_serve_cache_hits_total"], m["dstore_serve_cache_misses_total"])
	}

	// Determinism across server instances: a brand-new daemon computes
	// the identical document.
	base2 := startServer(t, mustNew(t, Options{Workers: 2}))
	again := post(t, base2, spec)
	waitStatus(t, base2, again.ID, "done", 60*time.Second)
	_, result2 := getRaw(t, base2+"/v1/runs/"+again.ID+"/result")
	if !bytes.Equal(result1, result2) {
		t.Fatalf("fresh instance produced different bytes:\n first: %s\nsecond: %s", result1, result2)
	}
}

// TestCoalescing checks duplicate in-flight submissions attach to the
// running job instead of queueing a second simulation.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	stub, started := blockingStub(release)
	base := startServer(t, testServer(t, Options{Workers: 1, QueueDepth: 4}, stub))

	spec := `{"bench":"VA"}`
	first := post(t, base, spec)
	if first.code != http.StatusAccepted {
		t.Fatalf("submit: %d", first.code)
	}
	<-started
	dup := post(t, base, spec)
	if dup.code != http.StatusAccepted || dup.ID != first.ID || dup.Status != "running" {
		t.Fatalf("duplicate = %d %s %q, want 202 on the running job", dup.code, dup.ID, dup.Status)
	}
	if m := metricsMap(t, base); m["dstore_serve_coalesced_total"] != 1 {
		t.Fatalf("coalesced = %d, want 1", m["dstore_serve_coalesced_total"])
	}
	close(release)
	waitStatus(t, base, first.ID, "done", 10*time.Second)
	third := post(t, base, spec)
	if third.code != http.StatusOK || !third.Cached {
		t.Fatalf("post-completion submit = %d cached %v, want cache hit", third.code, third.Cached)
	}
}

// TestBackpressure fills the bounded queue and requires a 429 with a
// Retry-After hint.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stub, started := blockingStub(release)
	base := startServer(t, testServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second}, stub))

	a := post(t, base, `{"bench":"VA"}`)
	if a.code != http.StatusAccepted {
		t.Fatalf("a: %d", a.code)
	}
	<-started // a is running; the queue slot is free again
	b := post(t, base, `{"bench":"NN"}`)
	if b.code != http.StatusAccepted {
		t.Fatalf("b: %d", b.code)
	}
	c := post(t, base, `{"bench":"MM"}`)
	if c.code != http.StatusTooManyRequests {
		t.Fatalf("c = %d, want 429", c.code)
	}
	if ra := c.headers.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if m := metricsMap(t, base); m["dstore_serve_rejected_total"] != 1 {
		t.Fatalf("rejected = %d, want 1", m["dstore_serve_rejected_total"])
	}
}

// TestGracefulShutdownDrains checks Shutdown's contract: new
// submissions get 503, queued jobs are cancelled, the in-flight job
// runs to completion and its result is served afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	stub, started := blockingStub(release)
	srv := testServer(t, Options{Workers: 1, QueueDepth: 4}, stub)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	base := hs.URL

	a := post(t, base, `{"bench":"VA"}`)
	<-started // a running
	b := post(t, base, `{"bench":"NN"}`)
	c := post(t, base, `{"bench":"MM"}`)
	if a.code != http.StatusAccepted || b.code != http.StatusAccepted || c.code != http.StatusAccepted {
		t.Fatalf("submissions: %d %d %d", a.code, b.code, c.code)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Shutdown(context.Background()) }()

	// The queue drain happens before Shutdown blocks on the in-flight
	// job, so b and c flip to cancelled while a is still running.
	waitStatus(t, base, b.ID, "cancelled", 10*time.Second)
	waitStatus(t, base, c.ID, "cancelled", 10*time.Second)
	d := post(t, base, `{"bench":"BP"}`)
	if d.code != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown = %d, want 503", d.code)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := waitStatus(t, base, a.ID, "done", 10*time.Second)
	if len(st.Result) == 0 {
		t.Fatal("drained job has no result")
	}
}

// TestJobTimeout checks the per-job timeout cancels a stuck
// simulation and reports it as cancelled.
func TestJobTimeout(t *testing.T) {
	stub, started := blockingStub(make(chan struct{})) // never released
	base := startServer(t, testServer(t, Options{Workers: 1, JobTimeout: 30 * time.Millisecond}, stub))
	sub := post(t, base, `{"bench":"VA"}`)
	<-started
	st := waitStatus(t, base, sub.ID, "cancelled", 10*time.Second)
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error = %q, want a deadline error", st.Error)
	}
	if m := metricsMap(t, base); m["dstore_serve_jobs_cancelled_total"] != 1 {
		t.Fatalf("cancelled = %d, want 1", m["dstore_serve_jobs_cancelled_total"])
	}
}

// TestBadRequestsAndLookups exercises the 400/404/409 paths.
func TestBadRequestsAndLookups(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stub, started := blockingStub(release)
	base := startServer(t, testServer(t, Options{Workers: 1}, stub))

	for _, body := range []string{
		`{"bench":"XX"}`,                        // unknown benchmark
		`{"bench":"MT","mode":"mesi"}`,          // unknown mode
		`{"bench":"MT","input":"medium"}`,       // unknown input
		`{"bench":"MT","config":{"workers":1}}`, // unknown override field
		`{"bench":"MT","config":{"sms":0}}`,     // invalid config value
		`not json`,                              //
	} {
		if r := post(t, base, body); r.code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, r.code)
		}
	}
	if r := get(t, base+"/v1/runs/deadbeef"); r.code != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", r.code)
	}
	// Result of an in-flight job is 409 with the live status.
	sub := post(t, base, `{"bench":"VA"}`)
	<-started
	code, body := getRaw(t, base+"/v1/runs/"+sub.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("in-flight result = %d (%s), want 409", code, body)
	}
}

// TestBenchmarksAndHealth checks the discovery and liveness endpoints.
func TestBenchmarksAndHealth(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: 1}))
	code, b := getRaw(t, base+"/v1/benchmarks")
	if code != http.StatusOK {
		t.Fatalf("/v1/benchmarks: %d", code)
	}
	var inv struct {
		Benchmarks []string `json:"benchmarks"`
		Modes      []string `json:"modes"`
		Table2     struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"table2"`
	}
	if err := json.Unmarshal(b, &inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Benchmarks) != 22 || len(inv.Table2.Rows) != 22 || len(inv.Modes) != 3 {
		t.Fatalf("inventory: %d benchmarks, %d rows, %d modes", len(inv.Benchmarks), len(inv.Table2.Rows), len(inv.Modes))
	}
	code, b = getRaw(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("/healthz: %d %s", code, b)
	}
	code, b = getRaw(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(b), "dstore_serve_cache_hits_total") {
		t.Fatalf("/metrics: %d %s", code, b)
	}
}
