package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/bench"
	"dstore/internal/core"
	"dstore/internal/obs"
	"dstore/internal/obs/dtrace"
	"dstore/internal/store"
)

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the number of simulations run concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs.
	// When the queue is full, submissions are rejected with 429 and a
	// Retry-After hint. Default 64.
	QueueDepth int
	// CacheEntries bounds the result cache. Default 1024.
	CacheEntries int
	// JobTimeout cancels a simulation that runs longer than this; the
	// job is reported as cancelled. Zero means no per-job timeout.
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// StallGuardEvents arms the simulation engine's forward-progress
	// watchdog for every job: a simulation that executes this many
	// events without the clock advancing is declared livelocked and
	// fails (the panic is caught per-job; the worker survives). Zero
	// selects 10M events, far beyond any legitimate same-tick cascade.
	StallGuardEvents uint64
	// EnableChaos exposes POST /v1/chaos, which runs the fault-injection
	// stress harness synchronously for soak testing. Off by default:
	// chaos runs are expensive and not content-addressable.
	EnableChaos bool
	// SnapshotCacheEntries bounds the warm-prefix snapshot cache: jobs
	// sharing a (benchmark, input, prefix-relevant config) warm-up
	// phase restore the post-produce machine state instead of
	// re-simulating it (bench.RunWithSnapshotContext). Zero means 64;
	// negative disables prefix memoization entirely.
	SnapshotCacheEntries int
	// StoreDir, when non-empty, layers a persistent content-addressed
	// disk store (internal/store) beneath the result and snapshot
	// LRUs: completed results and warm-prefix snapshots survive
	// restarts, and entries that fail verification at startup are
	// quarantined and counted rather than served or fatal.
	StoreDir string
	// StoreMaxBytes caps the disk store (internal/store LRU eviction).
	// Zero means store.DefaultMaxBytes; negative means unlimited.
	StoreMaxBytes int64
	// Name labels this worker's process row in stitched fleet traces.
	// Default "dstore-serve".
	Name string
	// Clock supplies distributed-tracing span timestamps. Nil falls
	// back to the recorder's monotonic sequence; the daemon injects a
	// wall clock at the cmd layer so internal packages stay wall-free.
	Clock dtrace.Clock
	// TraceSpanCap bounds the span ring (dtrace.DefaultCap when zero).
	TraceSpanCap int
	// EnablePprof registers the runtime profiling handlers under
	// /debug/pprof/ on the server's own mux (the -pprof flag). Off by
	// default: profiles expose internals and cost CPU to capture.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.StallGuardEvents == 0 {
		o.StallGuardEvents = 10_000_000
	}
	if o.SnapshotCacheEntries == 0 {
		o.SnapshotCacheEntries = 64
	}
	if o.Name == "" {
		o.Name = "dstore-serve"
	}
	return o
}

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	statusQueued    jobStatus = "queued"
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusFailed    jobStatus = "failed"
	statusCancelled jobStatus = "cancelled"
)

// job is one accepted submission. Mutable fields are guarded by the
// server mutex.
type job struct {
	id   string
	spec JobSpec
	cfg  core.Config

	status    jobStatus
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Distributed-tracing context, propagated by the coordinator in
	// X-Dstore-Trace-Id / X-Dstore-Span-Id. Zero trace means the
	// submission was untraced. submitNS is the recorder clock reading
	// at enqueue, the start of the queue-wait span.
	trace    uint64
	jobIdx   uint32
	submitNS uint64

	// Observability artifacts, filled by the run function and consumed
	// by runJob on success: the Chrome trace body (Trace jobs only) and
	// the run's latency histograms, merged into the server aggregates
	// behind /metrics.
	traceBody []byte
	hists     []*obs.Histogram
	// snapRestored records that the run resumed from a warm-prefix
	// snapshot instead of simulating its produce phase (surfaced in
	// the status response for observability; the Result is
	// byte-identical either way).
	snapRestored bool
}

// maxFailures bounds the recently-failed map; older failures fall off
// and read as 404, which is fine — failures are not content-addressed
// results, only diagnostics.
const maxFailures = 256

// Server is the simulation-as-a-service engine: it owns the job queue,
// the worker pool and the result cache, and exposes the HTTP API via
// Handler. Construct with New, stop with Shutdown or Close.
type Server struct {
	opt   Options
	mux   *http.ServeMux
	cache *resultCache
	// traces holds Chrome trace bodies for Trace jobs, keyed like the
	// result cache and bounded the same way.
	traces *resultCache
	// snaps is the warm-prefix snapshot cache: serialized post-produce
	// machine states keyed by bench.PrefixKey. Nil when disabled. Its
	// hit counter is the cache-answered half of every memoizable run.
	snaps *resultCache
	// disk is the persistent tier beneath cache and snaps (nil when
	// Options.StoreDir is empty). Closed — which syncs it — on
	// Shutdown, after the worker pool has drained its last write.
	disk  *store.Store
	runFn func(ctx context.Context, j *job) ([]byte, error)

	// histMu guards aggHists, the server-lifetime latency histograms
	// merged from every executed job (rendered by /metrics), and
	// queueWait, the submit→start wait distribution.
	histMu    sync.Mutex
	aggHists  [obs.NumHists]*obs.Histogram
	queueWait *obs.Histogram

	// rec is the distributed-tracing span ring (always on: recording
	// is one 32-byte copy per lifecycle stage and untraced submissions
	// record nothing).
	rec *dtrace.Recorder

	// baseCtx parents every job context; cancel aborts in-flight
	// simulations (hard stop — graceful Shutdown does not cancel it
	// unless its own context expires).
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	closed   bool
	inflight map[string]*job // queued or running
	failures map[string]*job // recently failed or cancelled
	failSeq  []string        // failure insertion order, for bounding
	queue    chan *job
	wg       sync.WaitGroup

	executed  atomic.Uint64 // simulations run to completion
	failed    atomic.Uint64
	cancelled atomic.Uint64
	coalesced atomic.Uint64 // submissions attached to an in-flight job
	rejected  atomic.Uint64 // 429s
	panicked  atomic.Uint64 // jobs that panicked (caught; worker survived)

	// Aggregates over /v1/chaos stress runs.
	chaosFaults  atomic.Uint64
	chaosNacks   atomic.Uint64
	chaosRetries atomic.Uint64
}

// New starts a server: opt.Workers goroutines draining the job queue.
// With Options.StoreDir set it opens (verifying and, where needed,
// quarantining) the persistent store first; a store that cannot be
// opened at all — not a corrupt entry, which only quarantines — is
// the one startup error.
func New(opt Options) (*Server, error) {
	return newServer(opt, nil)
}

// snapStore adapts the server's snapshot cache to bench.SnapshotStore.
// resultCache is already concurrency-safe and LRU-bounded, and its
// hit/miss counters give the memoization rate for free.
type snapStore struct{ c *resultCache }

func (st snapStore) Get(key string) ([]byte, bool) { return st.c.get(key) }
func (st snapStore) Put(key string, b []byte)      { st.c.put(key, b) }

// runBench executes a job for real: one private system per run, the
// canonical encoding as the stored body. Every run carries a histogram
// observer (feeding the /metrics latency aggregates); Trace jobs also
// record the event ring and serialize it as a Chrome trace artifact.
// Observation never changes a Result, so cached bodies stay
// byte-identical to untraced runs.
//
// Eligible jobs run through the warm-prefix snapshot cache: the CPU
// produce phase simulates once per (benchmark, input, prefix config)
// and later jobs resume from its stored machine state, with Results
// byte-identical to cold runs. Traced jobs bypass the cache (a
// resumed run records no prefix events), as do chaos runs and
// benchmarks without a CPU produce phase — bench.PrefixKey gates
// those; histogram-only observation rides along either way, so
// /metrics latency aggregates simply lack the skipped prefix samples.
func (s *Server) runBench(ctx context.Context, j *job) ([]byte, error) {
	o := obs.New(obs.Options{Trace: j.spec.Trace, Hist: true})
	j.cfg.Obs = o
	var store bench.SnapshotStore
	if s.snaps != nil && !j.spec.Trace {
		store = snapStore{s.snaps}
	}
	res, restored, err := bench.RunWithSnapshotContext(ctx, j.spec.Bench, j.cfg, j.spec.input(), store)
	j.snapRestored = restored
	if err != nil {
		return nil, err
	}
	for id := obs.HistID(0); id < obs.NumHists; id++ {
		j.hists = append(j.hists, o.Hist(id))
	}
	if j.spec.Trace {
		var buf bytes.Buffer
		if err := o.WriteTrace(&buf); err != nil {
			return nil, err
		}
		j.traceBody = buf.Bytes()
	}
	return EncodeResult(res)
}

// Store namespaces: results are canonical JSON documents, snapshots
// are DSSNAP streams whose header fingerprint is verified at Open.
const (
	storeNSResult = "result"
	storeNSSnap   = "snap"
)

// newServer is New with an injectable run function (test hook).
func newServer(opt Options, runFn func(context.Context, *job) ([]byte, error)) (*Server, error) {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		cache:    newResultCache(opt.CacheEntries),
		traces:   newResultCache(opt.CacheEntries),
		runFn:    runFn,
		baseCtx:  ctx,
		cancel:   cancel,
		inflight: make(map[string]*job),
		failures: make(map[string]*job),
		queue:    make(chan *job, opt.QueueDepth),
	}
	if opt.SnapshotCacheEntries > 0 {
		s.snaps = newResultCache(opt.SnapshotCacheEntries)
	}
	if opt.StoreDir != "" {
		disk, err := store.Open(store.Options{
			Dir:      opt.StoreDir,
			MaxBytes: opt.StoreMaxBytes,
			Verify: map[string]store.VerifyFunc{
				storeNSResult: verifyResultBody,
				storeNSSnap:   core.VerifySnapshotHeader,
			},
		})
		if err != nil {
			cancel()
			return nil, err
		}
		s.disk = disk
		s.cache.attachDisk(disk, storeNSResult)
		if s.snaps != nil {
			s.snaps.attachDisk(disk, storeNSSnap)
		}
	}
	if s.runFn == nil {
		s.runFn = s.runBench
	}
	for i := range s.aggHists {
		s.aggHists[i] = obs.NewHistogram(obs.HistID(i).String())
	}
	s.queueWait = obs.NewHistogram("dstore_serve_queue_wait_ns")
	s.rec = dtrace.New(dtrace.Options{
		Cap:     opt.TraceSpanCap,
		Clock:   opt.Clock,
		Process: opt.Name,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/traces/{tid}", s.handleTraceDump)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opt.EnablePprof {
		// On the server's own mux: the blank net/http/pprof import only
		// touches DefaultServeMux, which this daemon never serves.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// verifyResultBody is the startup deep check for the result
// namespace: stored bodies are canonical JSON documents, so anything
// that does not even parse is quarantined.
func verifyResultBody(body []byte) error {
	if !json.Valid(body) {
		return errors.New("serve: stored result is not valid JSON")
	}
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != statusQueued {
		// Shutdown cancelled it while it sat in the channel.
		s.mu.Unlock()
		return
	}
	j.status = statusRunning
	j.started = time.Now() //dstore:allow-wallclock job metadata only, never in a Result
	s.mu.Unlock()

	// Queue wait ends now: record the span (traced jobs) and feed the
	// /metrics wait histogram (every job).
	waitEnd := s.rec.Now()
	var wait uint64
	if waitEnd > j.submitNS {
		wait = waitEnd - j.submitNS
	}
	s.rec.Record(j.trace, dtrace.SpanQueueWait, j.jobIdx, 0, j.submitNS, wait, 0)
	s.histMu.Lock()
	s.queueWait.Observe(wait)
	s.histMu.Unlock()

	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	if s.opt.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opt.JobTimeout)
	}
	// Arm the engine's forward-progress watchdog: a livelocked
	// simulation panics instead of spinning the worker forever, and
	// safeRun converts that panic into a failed job.
	j.cfg.StallGuardEvents = s.opt.StallGuardEvents
	sp := s.rec.Begin(j.trace, dtrace.SpanSimulate, j.jobIdx, 0)
	body, err := s.safeRun(ctx, j)
	cancel()
	var simFlags uint8
	if err != nil {
		simFlags |= dtrace.FlagErr
	}
	if j.snapRestored {
		simFlags |= dtrace.FlagHit
	}
	sp.End(simFlags)
	if j.trace != 0 && s.snaps != nil && !j.spec.Trace {
		// The warm-prefix snapshot probe's outcome, as an instant span.
		var snapFlags uint8
		if j.snapRestored {
			snapFlags = dtrace.FlagHit
		}
		s.rec.Record(j.trace, dtrace.SpanSnapshot, j.jobIdx, 0, s.rec.Now(), 0, snapFlags)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now() //dstore:allow-wallclock job metadata only, never in a Result
	delete(s.inflight, j.id)
	if err != nil {
		j.errMsg = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.status = statusCancelled
			s.cancelled.Add(1)
		} else {
			j.status = statusFailed
			s.failed.Add(1)
		}
		s.recordFailureLocked(j)
		return
	}
	j.status = statusDone
	s.executed.Add(1)
	s.cache.put(j.id, body)
	if j.traceBody != nil {
		s.traces.put(j.id, j.traceBody)
	}
	s.mergeHists(j.hists)
}

// mergeHists folds one run's latency histograms into the server
// aggregates. Safe with nil or short slices (test run functions fill
// none).
func (s *Server) mergeHists(hists []*obs.Histogram) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	for i, h := range hists {
		if i < len(s.aggHists) {
			s.aggHists[i].Merge(h)
		}
	}
}

// histSnapshot returns an isolated copy of the aggregate histograms so
// /metrics can render without holding histMu.
func (s *Server) histSnapshot() []*obs.Histogram {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	out := make([]*obs.Histogram, len(s.aggHists))
	for i, h := range s.aggHists {
		c := obs.NewHistogram(h.Name())
		c.Merge(h)
		out[i] = c
	}
	return out
}

// safeRun executes the job's simulation with per-job panic isolation: a
// panicking simulation (a protocol assertion, the engine's livelock
// guard) becomes a failed-job result carrying the panic value and
// stack, and the worker goroutine survives to take the next job.
func (s *Server) safeRun(ctx context.Context, j *job) (body []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panicked.Add(1)
			body = nil
			err = fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return s.runFn(ctx, j)
}

// recordFailureLocked remembers a failed job for status reads, bounded
// to the most recent maxFailures. Caller holds s.mu.
func (s *Server) recordFailureLocked(j *job) {
	if _, ok := s.failures[j.id]; !ok {
		s.failSeq = append(s.failSeq, j.id)
	}
	s.failures[j.id] = j
	for len(s.failSeq) > maxFailures {
		delete(s.failures, s.failSeq[0])
		s.failSeq = s.failSeq[1:]
	}
}

// Shutdown stops the server gracefully: new submissions are refused
// with 503, queued jobs are cancelled, and in-flight simulations are
// drained. If ctx expires before the drain completes, in-flight jobs
// are hard-cancelled (they abort within a few thousand simulated
// events) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	drain:
		for {
			select {
			case j := <-s.queue:
				j.status = statusCancelled
				j.errMsg = "cancelled: server shutting down"
				j.finished = time.Now() //dstore:allow-wallclock job metadata only, never in a Result
				delete(s.inflight, j.id)
				s.cancelled.Add(1)
				s.recordFailureLocked(j)
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.closeDisk()
	case <-ctx.Done():
		s.cancel()
		<-done
		_ = s.closeDisk()
		return ctx.Err()
	}
}

// closeDisk syncs and closes the persistent store once every worker
// has retired (so the last write has landed). Idempotent; nil-safe.
func (s *Server) closeDisk() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Close()
}

// Close hard-stops the server: in-flight jobs are cancelled, then the
// pool is torn down.
func (s *Server) Close() {
	s.cancel()
	_ = s.Shutdown(context.Background())
}

// ResultDigestHeader advertises the SHA-256 (hex) of the result or
// trace document a response carries — the payload's content address.
// For an envelope response the digest covers the embedded result
// field, not the envelope. Coordinators verify it end to end before
// caching or forwarding, so a worker (or the network path to it)
// serving corrupt bytes is detected rather than trusted.
const ResultDigestHeader = "X-Dstore-Result-Digest"

// setResultDigest stamps ResultDigestHeader for payload. Must be
// called before the body (or status code) is written.
func setResultDigest(w http.ResponseWriter, payload []byte) {
	sum := sha256.Sum256(payload)
	w.Header().Set(ResultDigestHeader, hex.EncodeToString(sum[:]))
}

// runResponse is the envelope for submission and status responses.
type runResponse struct {
	ID     string          `json:"id"`
	Status jobStatus       `json:"status"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds submission bodies; specs are tiny.
const maxBodyBytes = 1 << 20

// handleSubmit implements POST /v1/runs: parse and normalize the spec,
// answer from cache on a hit, coalesce onto an identical in-flight
// job, otherwise enqueue — or push back with 429 when the queue is
// full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := norm.BuildConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := norm.ID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	trace, jobIdx, _ := dtrace.FromHeaders(r.Header)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if j, ok := s.inflight[id]; ok {
		s.coalesced.Add(1)
		writeJSON(w, http.StatusAccepted, runResponse{ID: id, Status: j.status})
		return
	}
	if body, ok := s.cache.get(id); ok {
		// A Trace job is only answerable from cache while its trace
		// artifact survives too; if the trace was evicted, fall through
		// and rerun to regenerate it.
		_, traceOK := s.traces.lookup(id)
		if !norm.Trace || traceOK {
			if trace != 0 {
				s.rec.Record(trace, dtrace.SpanCacheLookup, jobIdx, 0, s.rec.Now(), 0, dtrace.FlagHit)
			}
			setResultDigest(w, body)
			writeJSON(w, http.StatusOK, runResponse{ID: id, Status: statusDone, Cached: true, Result: body})
			return
		}
	}
	//dstore:allow-wallclock job metadata only, never in a Result
	j := &job{id: id, spec: norm, cfg: cfg, status: statusQueued, submitted: time.Now(),
		trace: trace, jobIdx: jobIdx, submitNS: s.rec.Now()}
	if trace != 0 {
		s.rec.Record(trace, dtrace.SpanCacheLookup, jobIdx, 0, j.submitNS, 0, 0)
	}
	select {
	case s.queue <- j:
		s.inflight[id] = j
		// A resubmission supersedes any stale failure record.
		delete(s.failures, id)
		writeJSON(w, http.StatusAccepted, runResponse{ID: id, Status: statusQueued})
	default:
		s.rejected.Add(1)
		retry := int(s.opt.RetryAfter / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeError(w, http.StatusTooManyRequests, "job queue full (%d pending); retry later", s.opt.QueueDepth)
	}
}

// handleStatus implements GET /v1/runs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	if j, ok := s.inflight[id]; ok {
		resp := runResponse{ID: id, Status: j.status}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if j, ok := s.failures[id]; ok {
		resp := runResponse{ID: id, Status: j.status, Error: j.errMsg}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.mu.Unlock()
	if body, ok := s.cache.lookup(id); ok {
		setResultDigest(w, body)
		writeJSON(w, http.StatusOK, runResponse{ID: id, Status: statusDone, Cached: true, Result: body})
		return
	}
	writeError(w, http.StatusNotFound, "unknown run %q", id)
}

// handleResult implements GET /v1/runs/{id}/result: the raw canonical
// result document, byte-identical across repeated identical jobs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if body, ok := s.cache.lookup(id); ok {
		w.Header().Set("Content-Type", "application/json")
		setResultDigest(w, body)
		_, _ = w.Write(body)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.inflight[id]; ok {
		writeJSON(w, http.StatusConflict, runResponse{ID: id, Status: j.status})
		return
	}
	if j, ok := s.failures[id]; ok {
		writeJSON(w, http.StatusConflict, runResponse{ID: id, Status: j.status, Error: j.errMsg})
		return
	}
	writeError(w, http.StatusNotFound, "unknown run %q", id)
}

// handleTrace implements GET /v1/runs/{id}/trace: the Chrome
// trace-event capture of a job submitted with "trace": true, loadable
// in Perfetto or chrome://tracing. Traces are deterministic in the
// spec, so repeated identical trace jobs serve identical bytes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if body, ok := s.traces.lookup(id); ok {
		w.Header().Set("Content-Type", "application/json")
		setResultDigest(w, body)
		_, _ = w.Write(body)
		return
	}
	s.mu.Lock()
	if j, ok := s.inflight[id]; ok {
		resp := runResponse{ID: id, Status: j.status}
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	s.mu.Unlock()
	if _, ok := s.cache.lookup(id); ok {
		writeError(w, http.StatusNotFound, "run %q has no stored trace (submit with \"trace\": true)", id)
		return
	}
	writeError(w, http.StatusNotFound, "unknown run %q", id)
}

// handleTraceDump implements GET /v1/traces/{tid}: this process's
// retained distributed-tracing spans for one trace ID (16 hex digits),
// in deterministic export order. The coordinator fans out to this
// endpoint on every worker and stitches the dumps into the merged
// Chrome trace behind /v1/sweeps/{id}/trace. Reads are pure: fetching
// a dump never records spans or renumbers sequence numbers.
func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	tid, err := strconv.ParseUint(r.PathValue("tid"), 16, 64)
	if err != nil || tid == 0 {
		writeError(w, http.StatusBadRequest, "bad trace id %q (want 16 hex digits)", r.PathValue("tid"))
		return
	}
	writeJSON(w, http.StatusOK, s.rec.DumpTrace(tid))
}

// queueWaitSnapshot returns an isolated copy of the queue-wait
// histogram for rendering.
func (s *Server) queueWaitSnapshot() *obs.Histogram {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	c := obs.NewHistogram(s.queueWait.Name())
	c.Merge(s.queueWait)
	return c
}

// handleBenchmarks implements GET /v1/benchmarks: what can be
// submitted, plus the Table II inventory.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks": bench.Codes(),
		"modes": []string{core.ModeCCSM.String(), core.ModeDirectStore.String(),
			core.ModeStandalone.String()},
		"inputs": []string{bench.Small.String(), bench.Big.String()},
		"table2": bench.Table2(),
	})
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight := len(s.inflight)
	closed := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "shutting-down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"inflight": inflight,
		"workers":  s.opt.Workers,
	})
}
