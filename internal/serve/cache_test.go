package serve

import (
	"bytes"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	// Touch a so b is the LRU entry when c arrives.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.lookup("b"); ok {
		t.Fatal("b not evicted")
	}
	if v, ok := c.lookup("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatal("a lost")
	}
	if v, ok := c.lookup("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Fatal("c lost")
	}
	hits, misses, evictions, size := c.stats()
	if hits != 1 || misses != 0 || evictions != 1 || size != 2 {
		t.Fatalf("stats = hits %d, misses %d, evictions %d, size %d", hits, misses, evictions, size)
	}
}

func TestCacheGetCountsLookupDoesNot(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.get("x"); ok {
		t.Fatal("phantom hit")
	}
	if _, ok := c.lookup("x"); ok {
		t.Fatal("phantom lookup hit")
	}
	c.put("x", []byte("X"))
	c.get("x")
	c.lookup("x")
	hits, misses, _, _ := c.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits %d, misses %d; want 1, 1 (lookup must not count)", hits, misses)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("old"))
	c.put("a", []byte("new"))
	v, ok := c.lookup("a")
	if !ok || string(v) != "new" {
		t.Fatalf("got %q", v)
	}
	if _, _, _, size := c.stats(); size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}
