package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJobSpecCanonical fuzzes the submission decode → normalize →
// canonical-encode path that feeds content addressing. Two properties
// must hold for arbitrary input: malformed specs never panic, and for
// any spec that normalizes, the canonical encoding is a fixed point —
// decoding it and re-encoding yields the same bytes, so a job's ID is
// stable no matter how many times its spec round-trips.
func FuzzJobSpecCanonical(f *testing.F) {
	f.Add([]byte(`{"bench":"MM","mode":"direct-store","input":"small"}`))
	f.Add([]byte(`{"bench":"nn"}`))
	f.Add([]byte(`{"bench":"MT","mode":"ccsm","input":"big","config":{"sms":8}}`))
	f.Add([]byte(`{"bench":"VA","config":{}}`))
	f.Add([]byte(`{"bench":"HT","mode":"standalone","config":{"l2_slices":2,"mshrs":16}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"bench":"MM","config":{"sms":-1}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte("{\"bench\":\"\x00\"}"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var spec JobSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return // not a spec at all; just must not have panicked
		}
		norm, err := spec.Normalize()
		if err != nil {
			return // invalid specs are rejected, never crash
		}
		if _, err := norm.BuildConfig(); err != nil {
			return // normalizes but carries an invalid override
		}
		enc1, err := norm.Canonical()
		if err != nil {
			t.Fatalf("normalized spec failed to encode: %v", err)
		}
		var back JobSpec
		if err := json.Unmarshal(enc1, &back); err != nil {
			t.Fatalf("canonical form does not decode: %v\n%s", err, enc1)
		}
		renorm, err := back.Normalize()
		if err != nil {
			t.Fatalf("canonical form does not re-normalize: %v\n%s", err, enc1)
		}
		enc2, err := renorm.Canonical()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n first: %s\nsecond: %s", enc1, enc2)
		}
		id1, err := norm.ID()
		if err != nil {
			t.Fatal(err)
		}
		id2, err := renorm.ID()
		if err != nil {
			t.Fatal(err)
		}
		if id1 != id2 {
			t.Fatalf("job ID unstable across round-trip: %s vs %s", id1, id2)
		}
	})
}
