package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over completed job results, keyed by
// the job's content address. Because the key hashes the full canonical
// spec and every run is a pure function of its spec, a cached body can
// be served for any future identical submission without rerunning the
// simulation.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	id   string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached body for id, counting a hit or a miss. Used
// on the submission path, so the hit/miss counters mean "submissions
// answered from cache" vs "submissions that had to simulate".
func (c *resultCache) get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// lookup is get without touching the hit/miss counters, for status and
// result reads that are not submissions.
func (c *resultCache) lookup(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a completed result, evicting the least recently used
// entry if the cache is full.
func (c *resultCache) put(id string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[id] = c.ll.PushFront(&cacheEntry{id: id, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).id)
		c.evictions++
	}
}

// stats snapshots the counters and current size.
func (c *resultCache) stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
