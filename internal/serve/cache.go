package serve

import (
	"container/list"
	"sync"

	"dstore/internal/store"
)

// resultCache is a bounded LRU over completed job results, keyed by
// the job's content address. Because the key hashes the full canonical
// spec and every run is a pure function of its spec, a cached body can
// be served for any future identical submission without rerunning the
// simulation.
//
// With a disk store attached (attachDisk), the LRU becomes the hot
// tier of a two-level cache: puts write through to disk, and a memory
// miss falls back to the persistent tier before declaring a true
// miss, so cached bodies survive process restarts.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64

	// Persistent tier; nil when the server runs memory-only. disk has
	// its own lock, and all disk I/O happens outside mu so a slow
	// fsync never stalls concurrent memory hits.
	disk *store.Store
	ns   string
}

type cacheEntry struct {
	id   string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// attachDisk layers a persistent namespace of st beneath the LRU.
// Call before the cache is shared across goroutines.
func (c *resultCache) attachDisk(st *store.Store, ns string) {
	c.disk = st
	c.ns = ns
}

// get returns the cached body for id, counting a hit or a miss. Used
// on the submission path, so the hit/miss counters mean "submissions
// answered from cache" (either tier) vs "submissions that had to
// simulate".
func (c *resultCache) get(id string) ([]byte, bool) {
	body, ok := c.memGet(id)
	if !ok {
		body, ok = c.diskGet(id)
	}
	c.mu.Lock()
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return body, ok
}

// lookup is get without touching the hit/miss counters, for status and
// result reads that are not submissions.
func (c *resultCache) lookup(id string) ([]byte, bool) {
	if body, ok := c.memGet(id); ok {
		return body, true
	}
	return c.diskGet(id)
}

func (c *resultCache) memGet(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// diskGet consults the persistent tier and promotes a hit into the
// memory LRU so repeat reads stay off the disk.
func (c *resultCache) diskGet(id string) ([]byte, bool) {
	if c.disk == nil {
		return nil, false
	}
	body, ok := c.disk.Get(c.ns, id)
	if !ok {
		return nil, false
	}
	c.memPut(id, body)
	return body, true
}

// put stores a completed result in the memory LRU and, when a disk
// store is attached, durably on disk. Persistence is best-effort: a
// full or failing disk degrades the server to memory-only behaviour
// rather than failing jobs.
func (c *resultCache) put(id string, body []byte) {
	c.memPut(id, body)
	if c.disk != nil {
		_ = c.disk.Put(c.ns, id, body)
	}
}

func (c *resultCache) memPut(id string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[id] = c.ll.PushFront(&cacheEntry{id: id, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).id)
		c.evictions++
	}
}

// stats snapshots the counters and current size.
func (c *resultCache) stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
