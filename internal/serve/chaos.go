package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dstore/internal/chaos"
	"dstore/internal/core"
)

// chaosRequest is the body of POST /v1/chaos: a seeded fault profile
// and the stress-harness shape. Zero fields take the harness defaults.
type chaosRequest struct {
	Seed    uint64 `json:"seed"`
	Profile string `json:"profile"`
	Mode    string `json:"mode,omitempty"`
	Ops     int    `json:"ops,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	Agents  int    `json:"agents,omitempty"`
	Lines   int    `json:"lines,omitempty"`
	Kernels bool   `json:"kernels,omitempty"`
	// Instances runs a sweep of independent stress runs (seeds Seed,
	// Seed+1, ...) across Workers goroutines. Default 1.
	Instances int `json:"instances,omitempty"`
	Workers   int `json:"workers,omitempty"`
}

// chaosInstance is one stress run's outcome in the response.
type chaosInstance struct {
	Seed       uint64   `json:"seed"`
	OK         bool     `json:"ok"`
	Ops        int      `json:"ops"`
	Ticks      uint64   `json:"ticks"`
	Faults     uint64   `json:"faults_injected"`
	Nacks      uint64   `json:"nacks"`
	Retries    uint64   `json:"retries"`
	Violations []string `json:"violations,omitempty"`
	Transcript string   `json:"transcript"`
}

// maxChaosInstances bounds one soak request; larger campaigns should
// issue multiple requests.
const maxChaosInstances = 256

// handleChaos implements POST /v1/chaos: run the fault-injection
// stress harness synchronously and report every instance's transcript
// and violations. Gated behind Options.EnableChaos — soak testing is
// an operator action, not part of the public result API.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if !s.opt.EnableChaos {
		writeError(w, http.StatusForbidden, "chaos endpoint disabled (start the server with chaos enabled)")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req chaosRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad chaos request: %v", err)
		return
	}
	prof, err := chaos.ProfileByName(req.Profile)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Instances < 1 {
		req.Instances = 1
	}
	if req.Instances > maxChaosInstances {
		writeError(w, http.StatusBadRequest, "instances %d exceeds limit %d", req.Instances, maxChaosInstances)
		return
	}
	workers := req.Workers
	if workers < 1 {
		workers = s.opt.Workers
	}
	cfg := chaos.StressConfig{
		Seed: req.Seed, Ops: req.Ops, Rounds: req.Rounds,
		Agents: req.Agents, Lines: req.Lines,
		Mode: mode, Profile: prof, Kernels: req.Kernels,
	}
	results, sweepErr := chaos.RunSweep(cfg, req.Instances, workers)

	instances := make([]chaosInstance, 0, len(results))
	failed := 0
	for _, res := range results {
		if res == nil {
			continue
		}
		s.chaosFaults.Add(res.FaultsInjected)
		s.chaosNacks.Add(res.Nacks)
		s.chaosRetries.Add(res.Retries)
		if res.Failed() {
			failed++
		}
		instances = append(instances, chaosInstance{
			Seed: res.Seed, OK: !res.Failed(), Ops: res.Ops,
			Ticks: uint64(res.Ticks), Faults: res.FaultsInjected,
			Nacks: res.Nacks, Retries: res.Retries,
			Violations: res.Violations, Transcript: res.Transcript,
		})
	}
	resp := map[string]any{
		"profile":   prof.Name,
		"mode":      mode.String(),
		"instances": instances,
		"failed":    failed,
		"ok":        sweepErr == nil,
	}
	if sweepErr != nil {
		resp["error"] = sweepErr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseMode resolves a mode name the same way job normalization does,
// defaulting to direct-store.
func parseMode(name string) (core.Mode, error) {
	switch name {
	case "", core.ModeDirectStore.String():
		return core.ModeDirectStore, nil
	case core.ModeCCSM.String():
		return core.ModeCCSM, nil
	case core.ModeStandalone.String():
		return core.ModeStandalone, nil
	}
	return 0, fmt.Errorf("serve: unknown mode %q (want ccsm, direct-store or standalone)", name)
}
