package serve

import (
	"fmt"
	"testing"
	"time"
)

// runToResult submits a spec, waits for completion and returns the raw
// result body from /v1/runs/{id}/result.
func runToResult(t *testing.T, base, spec string) (string, []byte) {
	t.Helper()
	sub := post(t, base, spec)
	if sub.code != 200 && sub.code != 202 {
		t.Fatalf("submit %s: %d (%s)", spec, sub.code, sub.Error)
	}
	waitStatus(t, base, sub.ID, "done", 30*time.Second)
	code, body := getRaw(t, base+"/v1/runs/"+sub.ID+"/result")
	if code != 200 {
		t.Fatalf("result %s: %d: %s", sub.ID, code, body)
	}
	return sub.ID, body
}

// TestSnapshotPrefixE2E proves the warm-prefix path end to end, across
// worker counts: a second job that differs from the first only in
// GPU-pipeline knobs restores the first job's post-produce snapshot
// (the snapshot-cache hit counter increments) and still returns a
// result byte-identical to the same spec run on a cold server with
// memoization disabled.
func TestSnapshotPrefixE2E(t *testing.T) {
	specA := `{"bench": "MM"}`
	specB := `{"bench": "MM", "config": {"sms": 8}}`

	// Cold oracle: spec B without any snapshot cache.
	coldURL := startServer(t, mustNew(t, Options{Workers: 1, SnapshotCacheEntries: -1}))
	if m := metricsMap(t, coldURL); m["dstore_serve_snapshot_misses_total"] != 0 {
		t.Fatalf("disabled snapshot cache recorded a miss: %v", m)
	}
	_, coldBody := runToResult(t, coldURL, specB)
	if m := metricsMap(t, coldURL); m["dstore_serve_snapshot_hits_total"] != 0 || m["dstore_serve_snapshot_misses_total"] != 0 {
		t.Fatalf("disabled snapshot cache touched counters: %v", m)
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := startServer(t, mustNew(t, Options{Workers: workers}))

			_, bodyA := runToResult(t, base, specA)
			m := metricsMap(t, base)
			if m["dstore_serve_snapshot_hits_total"] != 0 || m["dstore_serve_snapshot_misses_total"] != 1 {
				t.Fatalf("after cold run: hits=%d misses=%d, want 0/1",
					m["dstore_serve_snapshot_hits_total"], m["dstore_serve_snapshot_misses_total"])
			}
			if m["dstore_serve_snapshot_entries"] != 1 {
				t.Fatalf("after cold run: %d cached snapshots, want 1", m["dstore_serve_snapshot_entries"])
			}

			idB, bodyB := runToResult(t, base, specB)
			m = metricsMap(t, base)
			if m["dstore_serve_snapshot_hits_total"] != 1 || m["dstore_serve_snapshot_misses_total"] != 1 {
				t.Fatalf("after warm run: hits=%d misses=%d, want 1/1",
					m["dstore_serve_snapshot_hits_total"], m["dstore_serve_snapshot_misses_total"])
			}
			if string(bodyB) != string(coldBody) {
				t.Fatalf("warm result differs from cold oracle:\nwarm %s\ncold %s", bodyB, coldBody)
			}
			if string(bodyB) == string(bodyA) {
				t.Fatal("specs A and B produced identical bodies; B's override is not exercising the GPU")
			}

			// The warm result is cached under B's own job ID like any
			// other: a resubmission answers from the result cache.
			resub := post(t, base, specB)
			if resub.code != 200 || !resub.Cached || resub.ID != idB {
				t.Fatalf("resubmit after warm run: code=%d cached=%v id=%s", resub.code, resub.Cached, resub.ID)
			}
		})
	}
}

// TestSnapshotTraceBypass pins the eligibility gate in the service: a
// traced job must simulate its prefix for real (the trace would
// otherwise silently lack every produce-phase event), so it neither
// reads nor seeds the snapshot cache.
func TestSnapshotTraceBypass(t *testing.T) {
	base := startServer(t, mustNew(t, Options{Workers: 1}))
	runToResult(t, base, `{"bench": "MM", "trace": true}`)
	m := metricsMap(t, base)
	if m["dstore_serve_snapshot_hits_total"] != 0 || m["dstore_serve_snapshot_misses_total"] != 0 || m["dstore_serve_snapshot_entries"] != 0 {
		t.Fatalf("traced job touched the snapshot cache: hits=%d misses=%d entries=%d",
			m["dstore_serve_snapshot_hits_total"], m["dstore_serve_snapshot_misses_total"], m["dstore_serve_snapshot_entries"])
	}

	// An untraced twin then runs cold — and a traced job after it still
	// refuses to consume the now-warm snapshot.
	runToResult(t, base, `{"bench": "MM"}`)
	runToResult(t, base, `{"bench": "MM", "config": {"sms": 8}, "trace": true}`)
	m = metricsMap(t, base)
	if m["dstore_serve_snapshot_hits_total"] != 0 || m["dstore_serve_snapshot_misses_total"] != 1 {
		t.Fatalf("traced job consumed a snapshot: hits=%d misses=%d",
			m["dstore_serve_snapshot_hits_total"], m["dstore_serve_snapshot_misses_total"])
	}
}
