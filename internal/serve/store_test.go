package serve

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// runToCompletion submits spec and waits for the result body.
func runToCompletion(t *testing.T, base, spec string) (id string, body []byte) {
	t.Helper()
	r := post(t, base, spec)
	switch r.code {
	case http.StatusOK:
		return r.ID, []byte(r.Result)
	case http.StatusAccepted:
		waitStatus(t, base, r.ID, "done", time.Minute)
		code, b := getRaw(t, base+"/v1/runs/"+r.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("result fetch: %d: %s", code, b)
		}
		return r.ID, b
	default:
		t.Fatalf("submission: %d", r.code)
		return "", nil
	}
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := `{"bench":"MT","mode":"direct-store","input":"small"}`

	srv1 := mustNew(t, Options{Workers: 2, StoreDir: dir})
	base1 := startServer(t, srv1)
	id1, body1 := runToCompletion(t, base1, spec)
	if m := metricsMap(t, base1); m["dstore_store_disk_writes_total"] < 2 {
		// One result + at least one prefix snapshot must have landed.
		t.Fatalf("disk writes = %d, want >= 2", m["dstore_store_disk_writes_total"])
	}
	shutdown(t, srv1)

	// A new process over the same directory answers from disk without
	// simulating anything.
	srv2 := mustNew(t, Options{Workers: 2, StoreDir: dir})
	base2 := startServer(t, srv2)
	r := post(t, base2, spec)
	if r.code != http.StatusOK || !r.Cached || r.ID != id1 {
		t.Fatalf("restarted server: code=%d cached=%v id=%s (want 200/cached/%s)", r.code, r.Cached, r.ID, id1)
	}
	if !bytes.Equal([]byte(r.Result), body1) {
		t.Fatalf("restarted server served different bytes:\n  before: %s\n  after:  %s", body1, r.Result)
	}
	m := metricsMap(t, base2)
	if m["dstore_serve_jobs_executed_total"] != 0 {
		t.Fatalf("restarted server simulated %d jobs, want 0", m["dstore_serve_jobs_executed_total"])
	}
	if m["dstore_store_disk_hits_total"] == 0 {
		t.Fatal("no disk hit recorded for the restart-served result")
	}
	if m["dstore_serve_cache_hits_total"] != 1 {
		t.Fatalf("cache hits = %d, want 1 (disk-tier hits count as cache hits)", m["dstore_serve_cache_hits_total"])
	}
}

func TestSnapshotWarmFromDiskAfterRestart(t *testing.T) {
	dir := t.TempDir()
	cold := `{"bench":"NN","mode":"direct-store","input":"small"}`
	// Same produce prefix (GPU-pipeline knobs are stripped from the
	// prefix key), different full spec — so the result cache cannot
	// answer and only the snapshot store can skip the produce phase.
	warm := `{"bench":"NN","mode":"direct-store","input":"small","config":{"max_warps_per_sm":24}}`

	srv1 := mustNew(t, Options{Workers: 2, StoreDir: dir})
	base1 := startServer(t, srv1)
	_, _ = runToCompletion(t, base1, cold)
	shutdown(t, srv1)

	// Oracle: the warm spec on a fresh memory-only server (fully cold).
	oracleBase := startServer(t, mustNew(t, Options{Workers: 2, SnapshotCacheEntries: -1}))
	_, want := runToCompletion(t, oracleBase, warm)

	srv2 := mustNew(t, Options{Workers: 2, StoreDir: dir})
	base2 := startServer(t, srv2)
	_, got := runToCompletion(t, base2, warm)
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot-warm result differs from cold oracle:\n  warm: %s\n  cold: %s", got, want)
	}
	m := metricsMap(t, base2)
	if m["dstore_serve_snapshot_hits_total"] != 1 {
		t.Fatalf("snapshot hits = %d, want 1 (produce phase restored from disk)", m["dstore_serve_snapshot_hits_total"])
	}
	if m["dstore_store_disk_hits_total"] == 0 {
		t.Fatal("no disk hit recorded for the restored snapshot")
	}
	if m["dstore_serve_jobs_executed_total"] != 1 {
		t.Fatalf("executed = %d, want exactly the warm job", m["dstore_serve_jobs_executed_total"])
	}
}

func TestCorruptStoreEntryQuarantinedAtBoot(t *testing.T) {
	dir := t.TempDir()
	spec := `{"bench":"MT","mode":"direct-store","input":"small"}`

	srv1 := mustNew(t, Options{Workers: 1, StoreDir: dir})
	base1 := startServer(t, srv1)
	id, body1 := runToCompletion(t, base1, spec)
	shutdown(t, srv1)

	// Flip a byte inside the stored result body on disk.
	path := filepath.Join(dir, "result", id[:2], id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot must succeed, count the quarantined entry, and re-simulate
	// rather than serve the damaged bytes.
	srv2 := mustNew(t, Options{Workers: 1, StoreDir: dir})
	base2 := startServer(t, srv2)
	m := metricsMap(t, base2)
	if m["dstore_store_corrupt_entries"] != 1 {
		t.Fatalf("corrupt entries = %d, want 1", m["dstore_store_corrupt_entries"])
	}
	id2, body2 := runToCompletion(t, base2, spec)
	if id2 != id || !bytes.Equal(body2, body1) {
		t.Fatalf("re-simulated result differs: id=%s vs %s", id2, id)
	}
	if m2 := metricsMap(t, base2); m2["dstore_serve_jobs_executed_total"] != 1 {
		t.Fatalf("executed = %d, want 1 (corrupt entry must not be served)", m2["dstore_serve_jobs_executed_total"])
	}
}

func TestStoreDirUnopenable(t *testing.T) {
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Workers: 1, StoreDir: f}); err == nil {
		t.Fatal("New accepted a store rooted at a regular file")
	}
}
