package serve

import (
	"fmt"
	"net/http"
	"strings"

	"dstore/internal/obs"
	"dstore/internal/stats"
	"dstore/internal/store"
)

// metricDefs lists every exported metric in a fixed order, with its
// Prometheus type. Both /metrics and /v1/stats render from this table
// so the two views can never disagree on names.
var metricDefs = []struct {
	name, kind string
}{
	{"dstore_serve_cache_hits_total", "counter"},
	{"dstore_serve_cache_misses_total", "counter"},
	{"dstore_serve_cache_evictions_total", "counter"},
	{"dstore_serve_cache_entries", "gauge"},
	{"dstore_serve_snapshot_hits_total", "counter"},
	{"dstore_serve_snapshot_misses_total", "counter"},
	{"dstore_serve_snapshot_evictions_total", "counter"},
	{"dstore_serve_snapshot_entries", "gauge"},
	{"dstore_store_disk_hits_total", "counter"},
	{"dstore_store_disk_misses_total", "counter"},
	{"dstore_store_disk_writes_total", "counter"},
	{"dstore_store_disk_evictions_total", "counter"},
	{"dstore_store_disk_bytes", "gauge"},
	{"dstore_store_disk_entries", "gauge"},
	{"dstore_store_corrupt_entries", "gauge"},
	{"dstore_serve_coalesced_total", "counter"},
	{"dstore_serve_rejected_total", "counter"},
	{"dstore_serve_jobs_executed_total", "counter"},
	{"dstore_serve_jobs_failed_total", "counter"},
	{"dstore_serve_jobs_cancelled_total", "counter"},
	{"dstore_serve_jobs_panicked_total", "counter"},
	{"dstore_serve_inflight_jobs", "gauge"},
	{"dstore_serve_queue_capacity", "gauge"},
	{"dstore_chaos_faults_injected_total", "counter"},
	{"dstore_coherence_nacks_total", "counter"},
	{"dstore_coherence_retries_total", "counter"},
	{"dstore_sim_gpu_load_latency_ticks", "histogram"},
	{"dstore_sim_cpu_store_latency_ticks", "histogram"},
	{"dstore_sim_push_to_first_use_ticks", "histogram"},
	{"dstore_serve_queue_wait_ns", "histogram"},
	{"obs_spans_recorded_total", "counter"},
	{"obs_spans_dropped_total", "counter"},
}

// histMetricIndex maps a histogram metric name to its obs.HistID slot
// in the server aggregates.
var histMetricIndex = map[string]int{
	"dstore_sim_gpu_load_latency_ticks":  int(obs.HistGPULoadLat),
	"dstore_sim_cpu_store_latency_ticks": int(obs.HistCPUStoreLat),
	"dstore_sim_push_to_first_use_ticks": int(obs.HistPushToUse),
}

// snapshot materializes the current metric values as a stats.Set in
// metricDefs order. Histogram metrics appear as their sample counts —
// the full bucket breakdown is a /metrics-only rendering.
func (s *Server) snapshot() *stats.Set {
	hits, misses, evictions, size := s.cache.stats()
	var snapHits, snapMisses, snapEvictions uint64
	var snapSize int
	if s.snaps != nil {
		snapHits, snapMisses, snapEvictions, snapSize = s.snaps.stats()
	}
	var disk store.Stats
	if s.disk != nil {
		disk = s.disk.Stats()
	}
	hists := s.histSnapshot()
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	values := map[string]uint64{
		"dstore_serve_cache_hits_total":         hits,
		"dstore_serve_cache_misses_total":       misses,
		"dstore_serve_cache_evictions_total":    evictions,
		"dstore_serve_cache_entries":            uint64(size),
		"dstore_serve_snapshot_hits_total":      snapHits,
		"dstore_serve_snapshot_misses_total":    snapMisses,
		"dstore_serve_snapshot_evictions_total": snapEvictions,
		"dstore_serve_snapshot_entries":         uint64(snapSize),
		"dstore_store_disk_hits_total":          disk.Hits,
		"dstore_store_disk_misses_total":        disk.Misses,
		"dstore_store_disk_writes_total":        disk.Writes,
		"dstore_store_disk_evictions_total":     disk.Evictions,
		"dstore_store_disk_bytes":               uint64(disk.Bytes),
		"dstore_store_disk_entries":             uint64(disk.Entries),
		"dstore_store_corrupt_entries":          disk.Corrupt,
		"dstore_serve_coalesced_total":          s.coalesced.Load(),
		"dstore_serve_rejected_total":           s.rejected.Load(),
		"dstore_serve_jobs_executed_total":      s.executed.Load(),
		"dstore_serve_jobs_failed_total":        s.failed.Load(),
		"dstore_serve_jobs_cancelled_total":     s.cancelled.Load(),
		"dstore_serve_jobs_panicked_total":      s.panicked.Load(),
		"dstore_serve_inflight_jobs":            uint64(inflight),
		"dstore_serve_queue_capacity":           uint64(s.opt.QueueDepth),
		"dstore_chaos_faults_injected_total":    s.chaosFaults.Load(),
		"dstore_coherence_nacks_total":          s.chaosNacks.Load(),
		"dstore_coherence_retries_total":        s.chaosRetries.Load(),
	}
	spansRecorded, spansDropped := s.rec.Counts()
	values["obs_spans_recorded_total"] = spansRecorded
	values["obs_spans_dropped_total"] = spansDropped
	values["dstore_serve_queue_wait_ns"] = s.queueWaitSnapshot().Count()
	for name, idx := range histMetricIndex { //dstore:allow-maprange values land in a map keyed identically
		values[name] = hists[idx].Count()
	}
	set := stats.NewSet()
	for _, d := range metricDefs {
		set.Counter(d.name).Add(values[d.name]) //dstore:allow-statskey Prometheus names from metricDefs
	}
	return set
}

// handleMetrics implements GET /metrics in the Prometheus text
// exposition format. Counter and gauge metrics render one sample each;
// histogram metrics render the full cumulative bucket series plus
// _sum and _count, aggregated over every job the server has executed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	set := s.snapshot()
	hists := s.histSnapshot()
	var b strings.Builder
	for _, d := range metricDefs {
		if d.kind == "histogram" {
			writeHistogram(&b, d.name, histogramFor(s, hists, d.name))
			continue
		}
		//dstore:allow-statskey Prometheus names from metricDefs
		fmt.Fprintf(&b, "# TYPE %s %s\n%s %d\n", d.name, d.kind, d.name, set.Get(d.name))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}

// writeHistogram renders one histogram in the Prometheus exposition
// format via the shared obs renderer (cumulative le buckets, +Inf,
// _sum, _count — overflow bucket folded into +Inf).
func writeHistogram(b *strings.Builder, name string, h *obs.Histogram) {
	h.WriteProm(b, name)
}

// histogramFor resolves a histogram metric name to its source: the
// per-run simulation aggregates, or a server-level histogram such as
// queue wait.
func histogramFor(s *Server, hists []*obs.Histogram, name string) *obs.Histogram {
	if idx, ok := histMetricIndex[name]; ok {
		return hists[idx]
	}
	if name == "dstore_serve_queue_wait_ns" {
		return s.queueWaitSnapshot()
	}
	return nil
}

// handleStats implements GET /v1/stats: the same metrics as a JSON
// object (stats.Set's ordered encoding).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := s.snapshot().MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	_, _ = w.Write(b)
}
