// Package dram models main memory timing: channels, ranks and banks with
// row buffers, bank busy intervals, and a shared per-channel data bus.
// The geometry defaults to Table I of the paper (2GB, 1 channel, 2
// ranks, 8 banks @ 1GHz; the CPU tick domain is 2GHz, so each DRAM cycle
// is two ticks).
//
// Data values are not stored — the simulator measures placement and
// latency. Correct functional behaviour (a load observing the last
// store) is guaranteed by the coherence layer above.
package dram

import (
	"fmt"

	"dstore/internal/memsys"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Config describes the memory system geometry and timing. All timings
// are in CPU ticks.
type Config struct {
	Name     string
	Channels int
	Ranks    int
	Banks    int // per rank
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TRCD is activate-to-read latency (row miss adds it).
	TRCD sim.Tick
	// TCAS is the column access latency (paid by every access).
	TCAS sim.Tick
	// TRP is the precharge latency (paid when closing an open row).
	TRP sim.Tick
	// TBurst is the data-burst occupancy of the channel bus per line.
	TBurst sim.Tick
	// Scheduler selects request ordering; empty means SchedSimple.
	Scheduler SchedulerKind
}

// DefaultConfig returns the Table I memory system: 1 channel, 2 ranks, 8
// banks at 1GHz, with DDR3-1600-flavoured timings scaled into a 2GHz CPU
// tick domain.
func DefaultConfig() Config {
	return Config{
		Name:     "dram",
		Channels: 1,
		Ranks:    2,
		Banks:    8,
		RowBytes: 2048,
		TRCD:     28,
		TCAS:     28,
		TRP:      28,
		TBurst:   8,
	}
}

type bank struct {
	busyUntil  sim.Tick
	openRow    uint64
	hasOpenRow bool
}

// DRAM is the memory controller plus device timing model.
type DRAM struct {
	cfg      Config
	engine   *sim.Engine
	banks    []bank
	busFree  []sim.Tick // per channel
	totBanks int

	sched *frfcfs // nil under SchedSimple

	counters  *stats.Set
	reads     *stats.Counter
	writes    *stats.Counter
	rowHits   *stats.Counter
	rowMisses *stats.Counter
	totalLat  *stats.Counter
}

// New builds a DRAM model attached to the event engine.
func New(engine *sim.Engine, cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.Ranks <= 0 || cfg.Banks <= 0 {
		panic(fmt.Sprintf("dram %s: non-positive geometry", cfg.Name))
	}
	if cfg.RowBytes < memsys.LineSize {
		panic(fmt.Sprintf("dram %s: row smaller than a line", cfg.Name))
	}
	d := &DRAM{
		cfg:      cfg,
		engine:   engine,
		totBanks: cfg.Channels * cfg.Ranks * cfg.Banks,
		busFree:  make([]sim.Tick, cfg.Channels),
		counters: stats.NewSet(),
	}
	d.banks = make([]bank, d.totBanks)
	if cfg.Scheduler == SchedFRFCFS {
		d.sched = &frfcfs{d: d}
	}
	d.reads = d.counters.Counter("reads")
	d.writes = d.counters.Counter("writes")
	d.rowHits = d.counters.Counter("row_hits")
	d.rowMisses = d.counters.Counter("row_misses")
	d.totalLat = d.counters.Counter("total_latency")
	return d
}

// Counters exposes the statistics set.
func (d *DRAM) Counters() *stats.Set { return d.counters }

// mapAddr decomposes a line address into (channel, bank index, row).
// Lines interleave across banks so streaming accesses spread load; rows
// group consecutive per-bank lines.
func (d *DRAM) mapAddr(a memsys.Addr) (channel, bankIdx int, row uint64) {
	n := memsys.LineNum(a)
	bankIdx = int(n % uint64(d.totBanks))
	channel = bankIdx % d.cfg.Channels
	linesPerRow := uint64(d.cfg.RowBytes / memsys.LineSize)
	row = (n / uint64(d.totBanks)) / linesPerRow
	return
}

// callDone adapts a plain completion closure to the (fn, arg) form used
// internally; boxing a func value allocates nothing.
func callDone(arg any, now sim.Tick) { arg.(func(sim.Tick))(now) }

// Access schedules a line read or write and invokes done when the data
// burst completes. Under the simple scheduler the returned tick is the
// completion time; under FR-FCFS the request is queued and the return
// value is 0 (completion arrives via done).
func (d *DRAM) Access(a memsys.Addr, write bool, done func(now sim.Tick)) sim.Tick {
	if done == nil {
		return d.AccessArg(a, write, nil, nil)
	}
	return d.AccessArg(a, write, callDone, done)
}

// AccessArg is the allocation-free variant of Access: fn(arg, finish)
// fires when the burst completes, so hot callers can pass a static
// function plus a pooled argument instead of a fresh closure.
func (d *DRAM) AccessArg(a memsys.Addr, write bool, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	if d.sched != nil {
		d.sched.enqueue(a, write, fn, arg)
		return 0
	}
	return d.serviceNow(a, write, fn, arg)
}

// serviceNow runs a request against the bank/bus timing immediately.
func (d *DRAM) serviceNow(a memsys.Addr, write bool, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	channel, bankIdx, row := d.mapAddr(a)
	b := &d.banks[bankIdx]
	now := d.engine.Now()

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var lat sim.Tick
	switch {
	case b.hasOpenRow && b.openRow == row:
		d.rowHits.Inc()
		lat = d.cfg.TCAS
	case b.hasOpenRow:
		d.rowMisses.Inc()
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	default:
		d.rowMisses.Inc()
		lat = d.cfg.TRCD + d.cfg.TCAS
	}
	b.openRow = row
	b.hasOpenRow = true

	dataReady := start + lat
	// The channel data bus serialises bursts.
	busStart := dataReady
	if d.busFree[channel] > busStart {
		busStart = d.busFree[channel]
	}
	finish := busStart + d.cfg.TBurst
	d.busFree[channel] = finish
	b.busyUntil = finish

	if write {
		d.writes.Inc()
	} else {
		d.reads.Inc()
	}
	d.totalLat.Add(uint64(finish - now))

	if fn != nil {
		d.engine.ScheduleArgAt(finish, fn, arg)
	}
	return finish
}

// AvgLatency returns the mean access latency in ticks so far.
func (d *DRAM) AvgLatency() float64 {
	n := d.reads.Value() + d.writes.Value()
	return stats.Ratio(d.totalLat.Value(), n)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	return stats.Ratio(d.rowHits.Value(), d.rowHits.Value()+d.rowMisses.Value())
}
