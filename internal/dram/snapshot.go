package dram

import (
	"dstore/internal/sim"
	"dstore/internal/snap"
)

// SnapshotTo serialises bank/bus timing state and counters. The
// FRFCFS queues hold scheduled callbacks and cannot be serialised;
// at a quiescent point they are empty by construction, and a
// non-empty queue is reported as an unsnapshottable state.
func (d *DRAM) SnapshotTo(w *snap.Writer) {
	w.Tag("dram")
	w.U32(uint32(d.totBanks))
	for i := range d.banks {
		b := &d.banks[i]
		w.I64(int64(b.busyUntil))
		w.U64(b.openRow)
		w.Bool(b.hasOpenRow)
	}
	w.U32(uint32(len(d.busFree)))
	for _, t := range d.busFree {
		w.I64(int64(t))
	}
	if d.sched != nil {
		w.Bool(true)
		w.Bool(len(d.sched.reads) == 0 && len(d.sched.writes) == 0 && !d.sched.scheduling)
		w.Bool(d.sched.draining)
		w.U64(d.sched.seq)
	} else {
		w.Bool(false)
	}
	d.counters.SnapshotTo(w)
}

// RestoreFrom overwrites timing state from a snapshot taken on an
// identically configured controller.
func (d *DRAM) RestoreFrom(r *snap.Reader) {
	r.Tag("dram")
	if n := r.U32(); r.Err() == nil && int(n) != d.totBanks {
		r.Failf("dram %s: snapshot has %d banks, configured %d", d.cfg.Name, n, d.totBanks)
	}
	if r.Err() != nil {
		return
	}
	for i := range d.banks {
		d.banks[i].busyUntil = sim.Tick(r.I64())
		d.banks[i].openRow = r.U64()
		d.banks[i].hasOpenRow = r.Bool()
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(d.busFree) {
		r.Failf("dram %s: snapshot has %d channels, configured %d", d.cfg.Name, n, len(d.busFree))
	}
	if r.Err() != nil {
		return
	}
	for i := range d.busFree {
		d.busFree[i] = sim.Tick(r.I64())
	}
	hasSched := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasSched != (d.sched != nil) {
		r.Failf("dram %s: snapshot scheduler presence %v, configured %v", d.cfg.Name, hasSched, d.sched != nil)
		return
	}
	if hasSched {
		if !r.Bool() {
			r.Failf("dram %s: snapshot was taken with requests queued in the scheduler", d.cfg.Name)
			return
		}
		d.sched.draining = r.Bool()
		d.sched.seq = r.U64()
	}
	d.counters.RestoreFrom(r)
}
