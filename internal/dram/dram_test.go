package dram

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

func newDRAM() (*sim.Engine, *DRAM) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig())
}

func TestFirstAccessPaysActivate(t *testing.T) {
	e, d := newDRAM()
	cfg := DefaultConfig()
	var doneAt sim.Tick
	d.Access(0, false, func(now sim.Tick) { doneAt = now })
	e.Run()
	want := cfg.TRCD + cfg.TCAS + cfg.TBurst
	if doneAt != want {
		t.Errorf("cold access completed at %d, want %d", doneAt, want)
	}
	if d.Counters().Get("row_misses") != 1 {
		t.Error("cold access not counted as row miss")
	}
}

func TestRowHitIsFaster(t *testing.T) {
	_, d := newDRAM()
	cfg := DefaultConfig()
	base := d.Access(0, false, nil)
	// Same bank, same row: line 0 and line totBanks share a bank; with
	// RowBytes=2048 (16 lines/row) per-bank line 1 is still row 0.
	a2 := memsys.Addr(d.totBanks) * memsys.LineSize
	doneAt := d.Access(a2, false, nil)
	if doneAt-base != cfg.TCAS+cfg.TBurst {
		t.Errorf("row hit latency %d, want %d", doneAt-base, cfg.TCAS+cfg.TBurst)
	}
	if d.Counters().Get("row_hits") != 1 {
		t.Errorf("row hits = %d, want 1", d.Counters().Get("row_hits"))
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	e, d := newDRAM()
	cfg := DefaultConfig()
	linesPerRow := uint64(cfg.RowBytes / memsys.LineSize)
	// Two accesses to the same bank, different rows.
	a1 := memsys.Addr(0)
	a2 := memsys.Addr(uint64(d.totBanks) * linesPerRow * memsys.LineSize)
	t1 := d.Access(a1, false, nil)
	doneAt := d.Access(a2, false, nil)
	_ = e
	want := t1 + cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.TBurst
	if doneAt != want {
		t.Errorf("row conflict completed at %d, want %d", doneAt, want)
	}
	if d.Counters().Get("row_misses") != 2 {
		t.Error("conflict not counted as row miss")
	}
}

func TestBankParallelism(t *testing.T) {
	// Two accesses to different banks overlap; two to the same bank
	// serialise. Compare completion of the second access in each case.
	cfg := DefaultConfig()

	run := func(a1, a2 memsys.Addr) sim.Tick {
		e := sim.NewEngine()
		d := New(e, cfg)
		d.Access(a1, false, nil)
		var doneAt sim.Tick
		d.Access(a2, false, func(now sim.Tick) { doneAt = now })
		e.Run()
		return doneAt
	}

	e0 := sim.NewEngine()
	d0 := New(e0, cfg)
	sameBank := run(0, memsys.Addr(d0.totBanks)*memsys.LineSize)
	diffBank := run(0, memsys.LineSize) // adjacent lines: different banks
	if diffBank >= sameBank {
		t.Errorf("different-bank access (%d) not faster than same-bank (%d)", diffBank, sameBank)
	}
}

func TestChannelBusSerialisesBursts(t *testing.T) {
	// With one channel, n parallel accesses to n distinct banks still
	// finish at least TBurst apart.
	e, d := newDRAM()
	cfg := DefaultConfig()
	var finishes []sim.Tick
	for i := 0; i < 4; i++ {
		d.Access(memsys.Addr(i)*memsys.LineSize, false, func(now sim.Tick) {
			finishes = append(finishes, now)
		})
	}
	e.Run()
	if len(finishes) != 4 {
		t.Fatalf("completed %d accesses, want 4", len(finishes))
	}
	for i := 1; i < len(finishes); i++ {
		if finishes[i]-finishes[i-1] < cfg.TBurst {
			t.Errorf("bursts %d apart, want >= %d", finishes[i]-finishes[i-1], cfg.TBurst)
		}
	}
}

func TestReadWriteCounters(t *testing.T) {
	e, d := newDRAM()
	d.Access(0, false, nil)
	d.Access(memsys.LineSize, true, nil)
	d.Access(2*memsys.LineSize, true, nil)
	e.Run()
	if d.Counters().Get("reads") != 1 || d.Counters().Get("writes") != 2 {
		t.Errorf("reads=%d writes=%d", d.Counters().Get("reads"), d.Counters().Get("writes"))
	}
}

func TestAvgLatencyPositive(t *testing.T) {
	e, d := newDRAM()
	for i := 0; i < 10; i++ {
		d.Access(memsys.Addr(i)*memsys.LineSize, false, nil)
	}
	e.Run()
	if d.AvgLatency() <= 0 {
		t.Error("average latency not positive after accesses")
	}
}

func TestRowHitRateStreamIsHigh(t *testing.T) {
	// A sequential sweep revisits each row linesPerRow times per bank:
	// hit rate should be substantially positive.
	e, d := newDRAM()
	for i := 0; i < 1024; i++ {
		d.Access(memsys.Addr(i)*memsys.LineSize, false, nil)
	}
	e.Run()
	if hr := d.RowHitRate(); hr < 0.5 {
		t.Errorf("streaming row hit rate %v, want > 0.5", hr)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "no-banks", Channels: 1, Ranks: 1, Banks: 0, RowBytes: 2048},
		{Name: "tiny-row", Channels: 1, Ranks: 1, Banks: 1, RowBytes: 64},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			New(e, cfg)
		}()
	}
}

// Property: completion time is always at least issue time plus the
// minimum service latency, and accesses to one bank never complete out
// of order.
func TestPropertyCompletionMonotonicPerBank(t *testing.T) {
	cfg := DefaultConfig()
	minLat := cfg.TCAS + cfg.TBurst
	f := func(lineNums []uint8) bool {
		e := sim.NewEngine()
		d := New(e, cfg)
		type rec struct {
			bank int
			done sim.Tick
		}
		var recs []rec
		for _, ln := range lineNums {
			a := memsys.Addr(ln) * memsys.LineSize
			_, bankIdx, _ := d.mapAddr(a)
			issue := e.Now()
			d.Access(a, ln%2 == 0, func(now sim.Tick) {
				if now < issue+minLat {
					recs = append(recs, rec{bank: -1}) // sentinel failure
					return
				}
				recs = append(recs, rec{bank: bankIdx, done: now})
			})
		}
		e.Run()
		last := map[int]sim.Tick{}
		for _, r := range recs {
			if r.bank == -1 {
				return false
			}
			if r.done < last[r.bank] {
				return false
			}
			last[r.bank] = r.done
		}
		return len(recs) == len(lineNums)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
