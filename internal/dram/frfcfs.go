package dram

import (
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// SchedulerKind selects how the controller orders requests.
type SchedulerKind string

const (
	// SchedSimple services each access immediately against bank/bus
	// timing in arrival order (the default used by the paper-figure
	// experiments; see DESIGN.md §6).
	SchedSimple SchedulerKind = "simple"
	// SchedFRFCFS queues requests and services them First-Ready,
	// First-Come-First-Served: row-buffer hits first, then oldest;
	// reads are prioritised over writes until the write queue crosses
	// its drain threshold (writebacks stay off the read critical
	// path).
	SchedFRFCFS SchedulerKind = "frfcfs"
)

// queued is one pending request in the FR-FCFS queues.
type queued struct {
	addr    memsys.Addr
	write   bool
	arrival sim.Tick
	seq     uint64
	fn      func(arg any, now sim.Tick)
	arg     any
}

// frfcfs implements the queued scheduler over the same bank/bus timing
// the simple path uses.
type frfcfs struct {
	d *DRAM
	// reads and writes are pending queues in arrival order.
	reads  []queued
	writes []queued
	// draining latches the write-drain mode until the write queue
	// empties below the low mark.
	draining bool
	seq      uint64
	// scheduling is set while a wake-up event is pending.
	scheduling bool
}

// Write-queue thresholds: start draining at high, stop at low.
const (
	writeDrainHigh = 16
	writeDrainLow  = 4
)

// enqueue admits a request and kicks the scheduler.
func (f *frfcfs) enqueue(a memsys.Addr, write bool, fn func(arg any, now sim.Tick), arg any) {
	f.seq++
	q := queued{addr: a, write: write, arrival: f.d.engine.Now(), seq: f.seq, fn: fn, arg: arg}
	if write {
		f.writes = append(f.writes, q)
	} else {
		f.reads = append(f.reads, q)
	}
	f.kick()
}

// kick schedules a service pass if one is not already pending.
func (f *frfcfs) kick() {
	if f.scheduling {
		return
	}
	f.scheduling = true
	f.d.engine.Schedule(0, f.service)
}

// service issues as many requests as the banks/bus can accept now and
// re-arms itself at the next point anything could become ready.
func (f *frfcfs) service() {
	f.scheduling = false
	now := f.d.engine.Now()

	if len(f.writes) >= writeDrainHigh {
		f.draining = true
	}
	if len(f.writes) <= writeDrainLow {
		f.draining = false
	}

	// Pick the queue to serve: reads unless draining or no reads.
	var q *[]queued
	switch {
	case f.draining && len(f.writes) > 0:
		q = &f.writes
	case len(f.reads) > 0:
		q = &f.reads
	case len(f.writes) > 0:
		q = &f.writes
	default:
		return
	}

	// First-Ready: among the queue, prefer the oldest request whose
	// bank has its row open; fall back to the oldest request.
	best := -1
	for i, r := range *q {
		_, bankIdx, row := f.d.mapAddr(r.addr)
		b := &f.d.banks[bankIdx]
		if b.busyUntil <= now && b.hasOpenRow && b.openRow == row {
			best = i
			break // queue is in arrival order: first row-hit is oldest row-hit
		}
	}
	if best == -1 {
		// Oldest request whose bank is free.
		for i, r := range *q {
			_, bankIdx, _ := f.d.mapAddr(r.addr)
			if f.d.banks[bankIdx].busyUntil <= now {
				best = i
				break
			}
		}
	}
	if best == -1 {
		// Every candidate bank is busy: wake when the earliest frees.
		var soonest sim.Tick
		first := true
		for _, r := range *q {
			_, bankIdx, _ := f.d.mapAddr(r.addr)
			bu := f.d.banks[bankIdx].busyUntil
			if first || bu < soonest {
				soonest, first = bu, false
			}
		}
		if !first && soonest > now {
			f.scheduling = true
			f.d.engine.ScheduleAt(soonest, f.service)
		}
		return
	}

	r := (*q)[best]
	*q = append((*q)[:best], (*q)[best+1:]...)
	f.d.serviceNow(r.addr, r.write, r.fn, r.arg)
	// Keep issuing while something may be ready this tick.
	f.kick()
}
