package dram

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

func newFRFCFS() (*sim.Engine, *DRAM) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Scheduler = SchedFRFCFS
	return e, New(e, cfg)
}

func TestFRFCFSCompletesAll(t *testing.T) {
	e, d := newFRFCFS()
	done := 0
	for i := 0; i < 64; i++ {
		d.Access(memsys.Addr(i)*memsys.LineSize, i%3 == 0, func(sim.Tick) { done++ })
	}
	e.Run()
	if done != 64 {
		t.Fatalf("completed %d/64", done)
	}
	if d.Counters().Get("reads")+d.Counters().Get("writes") != 64 {
		t.Error("access counters wrong")
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	// Enqueue a row-miss (different row, same bank) before a row-hit;
	// after the first access opens row 0, the row-hit must be served
	// before the older row-miss... to test ordering, enqueue: A (bank0
	// row0), B (bank0 row1), C (bank0 row0). C should finish before B.
	e, d := newFRFCFS()
	cfg := DefaultConfig()
	linesPerRow := uint64(cfg.RowBytes / memsys.LineSize)
	bankStride := uint64(d.totBanks) * memsys.LineSize

	a := memsys.Addr(0)
	b := memsys.Addr(uint64(d.totBanks) * linesPerRow * memsys.LineSize) // bank0, row1
	c := memsys.Addr(bankStride)                                         // bank0, row0

	var order []string
	d.Access(a, false, func(sim.Tick) { order = append(order, "a") })
	d.Access(b, false, func(sim.Tick) { order = append(order, "b") })
	d.Access(c, false, func(sim.Tick) { order = append(order, "c") })
	e.Run()
	if len(order) != 3 {
		t.Fatalf("completed %v", order)
	}
	if order[0] != "a" || order[1] != "c" || order[2] != "b" {
		t.Errorf("service order %v, want [a c b] (row hit first)", order)
	}
}

func TestFRFCFSReadsPriorityOverWrites(t *testing.T) {
	// A handful of writes queued before a read: the read should
	// complete before the write backlog (below drain threshold).
	e, d := newFRFCFS()
	var order []string
	for i := 0; i < writeDrainLow+2; i++ {
		i := i
		// Same bank so they can't all issue at once.
		d.Access(memsys.Addr(uint64(i)*uint64(d.totBanks)*2048), true, func(sim.Tick) {
			_ = i
			order = append(order, "w")
		})
	}
	d.Access(memsys.Addr(memsys.LineSize), false, func(sim.Tick) { order = append(order, "r") })
	e.Run()
	pos := -1
	for i, s := range order {
		if s == "r" {
			pos = i
		}
	}
	if pos == -1 {
		t.Fatal("read never completed")
	}
	if pos > 1 {
		t.Errorf("read completed at position %d of %v, want near the front", pos, order)
	}
}

func TestFRFCFSWriteDrain(t *testing.T) {
	// Flood writes past the high mark with a competing read stream:
	// everything must still complete (no starvation either way).
	e, d := newFRFCFS()
	done := 0
	for i := 0; i < writeDrainHigh*2; i++ {
		d.Access(memsys.Addr(i)*memsys.LineSize, true, func(sim.Tick) { done++ })
	}
	for i := 0; i < 8; i++ {
		d.Access(memsys.Addr(1<<20)+memsys.Addr(i)*memsys.LineSize, false, func(sim.Tick) { done++ })
	}
	e.Run()
	if done != writeDrainHigh*2+8 {
		t.Fatalf("completed %d, want %d", done, writeDrainHigh*2+8)
	}
}

func TestFRFCFSDefaultUnchanged(t *testing.T) {
	// The default configuration must keep the simple scheduler (the
	// calibrated experiments depend on it).
	e := sim.NewEngine()
	d := New(e, DefaultConfig())
	if d.sched != nil {
		t.Fatal("default config got the FR-FCFS scheduler")
	}
	if at := d.Access(0, false, nil); at == 0 {
		t.Error("simple scheduler did not return a completion tick")
	}
}

// Property: FR-FCFS completes every request exactly once, regardless of
// the address/type mix.
func TestPropertyFRFCFSCompletion(t *testing.T) {
	f := func(ops []uint16) bool {
		e, d := newFRFCFS()
		want := len(ops)
		got := 0
		for _, op := range ops {
			d.Access(memsys.Addr(op)*memsys.LineSize, op%2 == 0, func(sim.Tick) { got++ })
		}
		e.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
