package snap

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Tag("hdr")
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.String("hello")
	w.String("")
	w.Tag("tail")

	r := NewReader(w.Bytes())
	r.Tag("hdr")
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	r.Tag("tail")
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTagMismatch(t *testing.T) {
	var w Writer
	w.Tag("engine")
	r := NewReader(w.Bytes())
	r.Tag("dram")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), `"dram"`) {
		t.Fatalf("want tag mismatch error, got %v", err)
	}
}

func TestTruncatedSticky(t *testing.T) {
	var w Writer
	w.U32(5)
	r := NewReader(w.Bytes())
	r.U64() // truncated
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Sticky: further reads return zero values, error is preserved.
	first := r.Err()
	if got := r.U64(); got != 0 {
		t.Fatalf("post-error read = %d", got)
	}
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestTrailingBytes(t *testing.T) {
	var w Writer
	w.U64(1)
	w.U8(9)
	r := NewReader(w.Bytes())
	r.U64()
	if err := r.Done(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("want invalid bool error")
	}
}
