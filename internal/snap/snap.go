// Package snap is the serialization substrate for deterministic
// full-system snapshots (DESIGN.md §11). It provides a tiny
// little-endian binary codec: fixed-width scalars, length-prefixed
// strings, and named section tags that make a corrupted or mismatched
// stream fail loudly at the section where it diverged instead of
// decoding garbage.
//
// The codec is deliberately dumb: no varints, no reflection, no
// schema. Every component writes its state in a fixed field order and
// reads it back in the same order; the format version lives in the
// container header (core.System.Snapshot), not here.
package snap

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates a snapshot stream. The zero value is ready to
// use. Writers never fail: validation belongs to the component
// deciding whether its state is snapshottable, not to the encoder.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a byte holding 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// String appends a u32 length prefix followed by the raw bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// tagMark precedes every section tag so a reader that falls out of
// sync hits a mark mismatch instead of misreading a length.
const tagMark = 0xD5

// Tag opens a named section. Readers verify tags in order, so a
// component that writes more or fewer fields than its reader expects
// is caught at the next section boundary.
func (w *Writer) Tag(name string) {
	w.U8(tagMark)
	w.String(name)
}

// Bytes returns the accumulated stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current stream length.
func (w *Writer) Len() int { return len(w.buf) }

// Reader decodes a snapshot stream. Errors are sticky: after the
// first failure every read returns a zero value and Err reports the
// original cause, so component restore code can decode straight-line
// and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a snapshot stream.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Failf records a validation error (state mismatch, unsupported
// section, capacity disagreement) with the same sticky semantics as
// a decode error.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("snap: truncated stream at offset %d (want %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte and rejects values other than 0 and 1.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.Failf("snap: invalid bool byte %d at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Tag consumes a section tag and verifies its name, anchoring any
// earlier field-count drift to a section boundary.
func (r *Reader) Tag(name string) {
	if r.err != nil {
		return
	}
	at := r.off
	if m := r.U8(); r.err == nil && m != tagMark {
		r.Failf("snap: expected section %q at offset %d, found no tag mark (byte %#x)", name, at, m)
		return
	}
	got := r.String()
	if r.err == nil && got != name {
		r.Failf("snap: expected section %q at offset %d, found %q", name, at, got)
	}
}

// Done verifies the stream was fully consumed and returns the first
// error, if any.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after snapshot", len(r.buf)-r.off)
	}
	return nil
}
