// Benchmark harness regenerating the paper's evaluation (DESIGN.md §4).
// Each Benchmark regenerates one table or figure; metrics that matter
// are reported via b.ReportMetric so `go test -bench` output carries
// the paper-comparable numbers:
//
//	go test -bench=Fig4 -benchmem        # Fig. 4 speedups
//	go test -bench=. -benchmem           # everything
//
// The full-figure benches run the entire 22-benchmark suite per
// iteration (tens of seconds); go test runs them once.
package dstore

import (
	"testing"

	"dstore/internal/bench"
	"dstore/internal/core"
)

// BenchmarkTable1Config regenerates Table I (system configuration).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table1().NumRows() == 0 {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkTable2Registry regenerates Table II (benchmark inventory).
func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table2().NumRows() != 22 {
			b.Fatal("Table II does not list 22 benchmarks")
		}
	}
}

// runFig runs the full 22-benchmark comparison for one input size and
// reports the paper's headline metrics.
func runFig(b *testing.B, in Input) []BenchComparison {
	b.Helper()
	var cs []BenchComparison
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = RunAllBenchmarks(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	return cs
}

// BenchmarkFig4SpeedupSmall regenerates Fig. 4 (top): direct-store
// speedup over CCSM for small inputs. Paper geomean of non-zero
// speedups: 7.8%.
func BenchmarkFig4SpeedupSmall(b *testing.B) {
	cs := runFig(b, Small)
	b.ReportMetric(GeomeanSpeedup(cs)*100, "geomean-speedup-%")
}

// BenchmarkFig4SpeedupBig regenerates Fig. 4 (bottom): big inputs.
// Paper geomean: 5.7%.
func BenchmarkFig4SpeedupBig(b *testing.B) {
	cs := runFig(b, Big)
	b.ReportMetric(GeomeanSpeedup(cs)*100, "geomean-speedup-%")
}

// BenchmarkFig5MissRateSmall regenerates Fig. 5 (top): GPU L2 miss
// rates for small inputs. Paper geomeans: CCSM 9.3%, DS 7.3%.
func BenchmarkFig5MissRateSmall(b *testing.B) {
	cs := runFig(b, Small)
	ccsm, ds := GeomeanMissRates(cs)
	b.ReportMetric(ccsm*100, "ccsm-missrate-%")
	b.ReportMetric(ds*100, "ds-missrate-%")
}

// BenchmarkFig5MissRateBig regenerates Fig. 5 (bottom): big inputs.
// Paper geomeans: CCSM 12.5%, DS 11.1%.
func BenchmarkFig5MissRateBig(b *testing.B) {
	cs := runFig(b, Big)
	ccsm, ds := GeomeanMissRates(cs)
	b.ReportMetric(ccsm*100, "ccsm-missrate-%")
	b.ReportMetric(ds*100, "ds-missrate-%")
}

// BenchmarkPrefetchComparison reproduces the §IV remark: "we have also
// compared direct stores to prefetching and find that direct store's
// performance improvements there are even higher" — i.e. DS beats even
// a prefetch-augmented CCSM baseline.
func BenchmarkPrefetchComparison(b *testing.B) {
	pf := core.DefaultConfig(core.ModeCCSM)
	pf.PrefetchDepth = 4
	var vsPlain, vsPf float64
	for i := 0; i < b.N; i++ {
		plain, err := bench.Compare("NN", bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		pfc, err := bench.CompareWithConfigs("NN", bench.Small, pf,
			core.DefaultConfig(core.ModeDirectStore))
		if err != nil {
			b.Fatal(err)
		}
		vsPlain, vsPf = plain.Speedup(), pfc.Speedup()
	}
	b.ReportMetric(vsPlain*100, "ds-vs-ccsm-%")
	b.ReportMetric(vsPf*100, "ds-vs-prefetch-%")
}

// BenchmarkStandaloneMode runs direct store as a full CCSM replacement
// (§III-H): the ordering point stops cross-probing between CPU and
// GPU.
func BenchmarkStandaloneMode(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		c, err := bench.CompareWithConfigs("BL", bench.Small,
			core.DefaultConfig(core.ModeCCSM), core.DefaultConfig(core.ModeStandalone))
		if err != nil {
			b.Fatal(err)
		}
		s = c.Speedup()
	}
	b.ReportMetric(s*100, "standalone-speedup-%")
}

// ablation runs NN/small under direct store with a config mutation and
// reports the speedup delta against the unmodified direct store.
func ablation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	var base, abl float64
	for i := 0; i < b.N; i++ {
		ref, err := bench.Compare("NN", bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(core.ModeDirectStore)
		mutate(&cfg)
		mod, err := bench.CompareWithConfigs("NN", bench.Small,
			core.DefaultConfig(core.ModeCCSM), cfg)
		if err != nil {
			b.Fatal(err)
		}
		base, abl = ref.Speedup(), mod.Speedup()
	}
	b.ReportMetric(base*100, "paper-design-%")
	b.ReportMetric(abl*100, "ablated-%")
}

// BenchmarkAblationNoGetx drops the GETX control flit preceding each
// PUTX (§III-F's "the CPU will issue GETX command").
func BenchmarkAblationNoGetx(b *testing.B) {
	ablation(b, func(c *core.Config) { c.DirectGetx = false })
}

// BenchmarkAblationSharedNetwork routes pushes over the shared crossbar
// instead of the dedicated network of §III-G.
func BenchmarkAblationSharedNetwork(b *testing.B) {
	ablation(b, func(c *core.Config) { c.DirectOverXbar = true })
}

// BenchmarkAblationPushWriteThrough installs pushes exclusive-clean
// with a memory write-through instead of the paper's MM (§III-F).
func BenchmarkAblationPushWriteThrough(b *testing.B) {
	ablation(b, func(c *core.Config) { c.PushWriteThrough = true })
}

// BenchmarkAblationSharedNetworkOverlapped repeats the shared-network
// ablation with the CPU producing *while* the GPU consumes — the
// pattern where the dedicated network's contention avoidance actually
// matters (phase-serialized runs barely exercise it).
func BenchmarkAblationSharedNetworkOverlapped(b *testing.B) {
	const bytes = 512 * 1024
	run := func(cfg core.Config) Tick {
		sys := core.NewSystem(cfg)
		base, err := sys.AllocShared(bytes, "stream")
		if err != nil {
			b.Fatal(err)
		}
		var ops []CPUOp
		for a := base; a < base+bytes; a += 128 {
			ops = append(ops, CPUOp{Type: StoreOp, Addr: a})
		}
		const warps = 96
		lines := bytes / 128
		var ws []Warp
		for w := 0; w < warps; w++ {
			var wops []WarpOp
			for i := w; i < lines; i += warps {
				wops = append(wops,
					WarpOp{Kind: OpGlobalLoad, Addr: base + Addr(i*128), Lines: 1},
					WarpOp{Kind: OpCompute, Gap: 60})
			}
			ws = append(ws, Warp{Ops: wops})
		}
		return sys.RunOverlapped(ops, Kernel{Name: "stream", Warps: ws})
	}
	var dedicated, shared Tick
	for i := 0; i < b.N; i++ {
		dedicated = run(core.DefaultConfig(core.ModeDirectStore))
		cfg := core.DefaultConfig(core.ModeDirectStore)
		cfg.DirectOverXbar = true
		shared = run(cfg)
	}
	b.ReportMetric(float64(dedicated), "dedicated-ticks")
	b.ReportMetric(float64(shared), "shared-xbar-ticks")
}

// BenchmarkAblationDirectBandwidth halves and doubles the dedicated
// network's width around the default (32 B/tick, matching the
// coherence network per §III-G).
func BenchmarkAblationDirectBandwidth(b *testing.B) {
	var narrow, wide float64
	for i := 0; i < b.N; i++ {
		n := core.DefaultConfig(core.ModeDirectStore)
		n.DirectBW = 16
		w := core.DefaultConfig(core.ModeDirectStore)
		w.DirectBW = 64
		cn, err := bench.CompareWithConfigs("NN", bench.Small, core.DefaultConfig(core.ModeCCSM), n)
		if err != nil {
			b.Fatal(err)
		}
		cw, err := bench.CompareWithConfigs("NN", bench.Small, core.DefaultConfig(core.ModeCCSM), w)
		if err != nil {
			b.Fatal(err)
		}
		narrow, wide = cn.Speedup(), cw.Speedup()
	}
	b.ReportMetric(narrow*100, "16B/t-%")
	b.ReportMetric(wide*100, "64B/t-%")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (events
// per second) on a representative benchmark, for harness health.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var ticks Tick
	for i := 0; i < b.N; i++ {
		sys := NewSystem(DefaultConfig(DirectStore))
		w, err := bench.Build(sys, "HT", bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		ticks = w.Run(sys)
		events = sys.Engine.Executed()
	}
	b.ReportMetric(float64(events), "events/run")
	b.ReportMetric(float64(ticks), "ticks/run")
}

// BenchmarkAblationSRRIP swaps the GPU L2 slices' replacement policy
// from LRU to scan-resistant SRRIP and measures the effect on a
// capacity-pressured streaming benchmark.
func BenchmarkAblationSRRIP(b *testing.B) {
	var lru, srrip float64
	for i := 0; i < b.N; i++ {
		base, err := bench.Compare("VA", bench.Big)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(core.ModeDirectStore)
		cfg.GPUL2Policy = "srrip"
		mod, err := bench.CompareWithConfigs("VA", bench.Big,
			core.DefaultConfig(core.ModeCCSM), cfg)
		if err != nil {
			b.Fatal(err)
		}
		lru, srrip = base.Speedup(), mod.Speedup()
	}
	b.ReportMetric(lru*100, "lru-%")
	b.ReportMetric(srrip*100, "srrip-%")
}

// BenchmarkAblationRingNoC swaps the coherence crossbar for the ring
// topology.
func BenchmarkAblationRingNoC(b *testing.B) {
	var xbar, ring float64
	for i := 0; i < b.N; i++ {
		base, err := bench.Compare("BL", bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(core.ModeDirectStore)
		cfg.NoC = "ring"
		ccsm := core.DefaultConfig(core.ModeCCSM)
		ccsm.NoC = "ring"
		mod, err := bench.CompareWithConfigs("BL", bench.Small, ccsm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		xbar, ring = base.Speedup(), mod.Speedup()
	}
	b.ReportMetric(xbar*100, "xbar-%")
	b.ReportMetric(ring*100, "ring-%")
}

// BenchmarkRegionCoherenceBaseline compares direct store against the
// HSC-style region-directory baseline (the paper's reference [2]): a
// CCSM whose private-region requests skip the Hammer broadcast. Direct
// store should retain an edge — the probe filter removes probe traffic
// but cannot pre-place the data.
func BenchmarkRegionCoherenceBaseline(b *testing.B) {
	hsc := core.DefaultConfig(core.ModeCCSM)
	hsc.RegionDirectory = true
	var vsPlain, vsHSC float64
	for i := 0; i < b.N; i++ {
		plain, err := bench.Compare("NN", bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		h, err := bench.CompareWithConfigs("NN", bench.Small, hsc,
			core.DefaultConfig(core.ModeDirectStore))
		if err != nil {
			b.Fatal(err)
		}
		vsPlain, vsHSC = plain.Speedup(), h.Speedup()
	}
	b.ReportMetric(vsPlain*100, "ds-vs-hammer-%")
	b.ReportMetric(vsHSC*100, "ds-vs-region-dir-%")
}
