package dstore

import (
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	sys := NewSystem(DefaultConfig(DirectStore))
	base, err := sys.AllocShared(16*1024, "data")
	if err != nil {
		t.Fatal(err)
	}
	var ops []CPUOp
	for a := base; a < base+16*1024; a += 128 {
		ops = append(ops, CPUOp{Type: StoreOp, Addr: a})
	}
	sys.RunCPU(ops)
	if sys.PushesReceived() != 128 {
		t.Errorf("pushes = %d, want 128", sys.PushesReceived())
	}
	var warp Warp
	for a := base; a < base+16*1024; a += 128 {
		warp.Ops = append(warp.Ops, WarpOp{Kind: OpGlobalLoad, Addr: a, Lines: 1})
	}
	sys.RunKernel(Kernel{Name: "consume", Warps: []Warp{warp}})
	if sys.GPUL2MissRate() > 0.01 {
		t.Errorf("pushed data missed: rate %.2f", sys.GPUL2MissRate())
	}
}

func TestPublicModesDistinct(t *testing.T) {
	if CCSM == DirectStore || DirectStore == Standalone {
		t.Fatal("mode constants collide")
	}
	if CCSM.DirectStoreEnabled() {
		t.Error("CCSM claims pushes")
	}
}

func TestPublicBenchmarkAPI(t *testing.T) {
	if len(BenchmarkCodes()) != 22 {
		t.Fatal("not 22 benchmarks")
	}
	cmp, err := CompareBenchmark("HT", Small)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() <= 0 {
		t.Errorf("HT small speedup %.2f, want positive", cmp.Speedup())
	}
	if _, err := RunBenchmark("nope", CCSM, Small); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicTables(t *testing.T) {
	if !strings.Contains(Table1().String(), "MOESI") {
		t.Error("Table1 missing protocol")
	}
	if !strings.Contains(Table2().String(), "Rodinia") {
		t.Error("Table2 missing suite")
	}
}

func TestPublicTranslate(t *testing.T) {
	tr, err := Translate(map[string]string{"m.cu": `
int main() {
    float *a = (float *)malloc(1024);
    k<<<1, 32>>>(a);
}
`}, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Allocs) != 1 {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
	if !strings.Contains(tr.Files["m.cu"], "MAP_FIXED") {
		t.Error("rewrite missing")
	}
}

func TestPublicGeomeans(t *testing.T) {
	cs := []BenchComparison{
		{CCSM: BenchResult{Ticks: 120, MissRate: 0.2}, DS: BenchResult{Ticks: 100, MissRate: 0.1}},
	}
	if g := GeomeanSpeedup(cs); g < 0.19 || g > 0.21 {
		t.Errorf("geomean %v", g)
	}
	a, b := GeomeanMissRates(cs)
	if a < 0.199 || a > 0.201 || b < 0.099 || b > 0.101 {
		t.Errorf("miss geomeans %v %v", a, b)
	}
	if Fig4Table(Small, cs).NumRows() == 0 || Fig5Table(Small, cs).NumRows() == 0 {
		t.Error("figure tables empty")
	}
}
