GO ?= go

# check is the gate every change must pass: static analysis, a full
# build, the full test suite, a race-detector pass over the packages
# that use (sweep runner, serve daemon) or feed (event kernel)
# concurrency, and the exhaustive small-config protocol model check.
.PHONY: check
check: vet lint tablecover build test race modelcheck trace-smoke fleet-smoke fleet-chaos-smoke obs-fleet-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (determinism contract, stats-key
# registry, event-callback safety), plus staticcheck when installed.
.PHONY: lint
lint:
	$(GO) run ./cmd/dstore-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# tablecover statically cross-checks the protocol table against its
# handlers: every declared (state, event) row must have a handler arm
# in ctrl.go/memctrl.go, every Transition call site must be able to hit
# a declared row, and every declared row must fire in the committed
# model-checker reachability dump. It already runs inside `lint`; this
# target is the focused rerun for protocol edits.
.PHONY: tablecover
tablecover:
	$(GO) run ./cmd/dstore-lint -run tablecover ./internal/coherence

# reachability regenerates the committed model-checker coverage dump
# that the tablecover dead-transition check diffs against. Rerun after
# any protocol-table or model change and commit the result.
.PHONY: reachability
reachability:
	$(GO) run ./cmd/dstore-modelcheck -coverage internal/coherence/testdata/reachability.json
	@echo "wrote internal/coherence/testdata/reachability.json"

# modelcheck exhaustively explores the standard sweep of small
# protocol configurations (~4.2M states across 7 configs, ~8s with the
# parallel checker) and fails on any SWMR / data-value / MM-install
# invariant violation, or if the sweep ever explores fewer states than
# the committed floor (a shrinking sweep means rules silently stopped
# firing).
.PHONY: modelcheck
modelcheck:
	$(GO) run ./cmd/dstore-modelcheck -min-states 4000000

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./internal/bench ./internal/sim ./internal/serve ./internal/chaos ./internal/coherence ./internal/store ./internal/fleet ./internal/modelcheck

# stress runs the seeded randomized coherence stress harness with the
# heavy fault profile. Deterministic: the same SEED and PROFILE always
# produce a byte-identical transcript, so a failure here is a seed you
# can replay forever. Override e.g. `make stress SEED=42 OPS=50000`.
SEED ?= 2026
PROFILE ?= heavy
OPS ?= 10000
.PHONY: stress
stress:
	$(GO) run ./cmd/dstore-sim -stress -chaos-seed $(SEED) -chaos-profile $(PROFILE) -stress-ops $(OPS)

# stress-soak fans the harness out across many seeds in parallel —
# the long-haul version of `make stress` for hunting rare interleavings.
.PHONY: stress-soak
stress-soak:
	$(GO) run ./cmd/dstore-sim -stress -chaos-seed $(SEED) -chaos-profile $(PROFILE) -stress-ops $(OPS) -stress-instances 32

# trace-smoke records a Chrome trace of one small benchmark and
# validates it: dstore-sim re-parses the written file through
# encoding/json (the same parse Perfetto performs) and exits non-zero
# on a malformed document. The timeline, histogram and time-series
# exports ride along so every observability format gets exercised.
.PHONY: trace-smoke
trace-smoke:
	$(GO) run ./cmd/dstore-sim -bench MT -input small -mode direct-store \
		-trace /tmp/dstore-trace-smoke.json -timeline /tmp/dstore-trace-smoke.txt \
		-hist -timeseries /tmp/dstore-trace-smoke.csv > /dev/null
	@rm -f /tmp/dstore-trace-smoke.json /tmp/dstore-trace-smoke.txt /tmp/dstore-trace-smoke.csv
	@echo "trace-smoke: ok"

# serve-smoke boots the dstore-serve daemon on a random loopback port,
# submits one small job over real HTTP, resubmits it, and asserts the
# second answer is a byte-identical cache hit (checked against the
# /metrics counters).
.PHONY: serve-smoke
serve-smoke:
	$(GO) run ./cmd/dstore-serve -smoke

# fleet-smoke boots an in-process fleet — two persistent dstore-serve
# workers plus a dstore-coord coordinator — streams one sweep matrix
# through it, SIGKILLs a worker, and asserts every job still answers
# byte-identically via the hash ring's surviving replica.
.PHONY: fleet-smoke
fleet-smoke:
	$(GO) run ./cmd/dstore-coord -smoke

# fleet-chaos-smoke runs the fault-tolerance walkthrough in-process:
# a worker behind a chaosnet proxy is partitioned (jobs fail over,
# the breaker trips), healed (a probe recloses it), then serves one
# bit-flipped result body — which the coordinator's digest check must
# catch, quarantine, and answer around from the replica.
.PHONY: fleet-chaos-smoke
fleet-chaos-smoke:
	$(GO) run ./cmd/dstore-coord -chaos-smoke

# obs-fleet-smoke exercises the observability plane end to end: two
# named in-process workers plus a coordinator run a 12-job sweep, the
# stitched cross-process Chrome trace from /v1/sweeps/{id}/trace is
# re-parsed through encoding/json and must carry spans from the
# coordinator and both workers under one trace ID, and the federated
# /metrics aggregates must equal the sums of the workers' own scrapes.
.PHONY: obs-fleet-smoke
obs-fleet-smoke:
	$(GO) run ./cmd/dstore-coord -obs-smoke

# bench regenerates the event-kernel microbenchmarks. Compare against
# the committed baseline in BENCH_sim_engine.txt before merging engine
# changes.
.PHONY: bench
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim

.PHONY: baseline
baseline:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim | tee BENCH_sim_engine.txt

# baseline-json regenerates the machine-readable performance baseline
# (BENCH_coherence.json): the full Fig. 4 sweep run sequentially with
# the event counter on (wall clock, events, events/sec), the recorded
# seed-binary reference for the same sweep, and the engine
# microbenchmarks lifted from BENCH_sim_engine.txt. SEED_FIG4_WALL is
# the growth seed's wall seconds for the sweep, measured back-to-back
# on the same machine; override it when re-measuring on new hardware
# (or set it to 0 to omit the reference block).
SEED_FIG4_WALL ?= 35.71
.PHONY: baseline-json
baseline-json: baseline
	$(GO) run ./cmd/dstore-bench -baseline-json BENCH_coherence.json -seed-fig4-wall $(SEED_FIG4_WALL)

# bench-diff is the microbenchmark regression guard: rerun the engine
# benchmarks and compare against the committed baseline, warning on
# any metric more than 10% worse. Warn-only for timing (wall clock on
# a shared box is noisy); allocation metrics are deterministic, so
# treat a B/op or allocs/op warning as a real regression.
.PHONY: bench-diff
bench-diff:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim > /tmp/dstore-bench-current.txt
	$(GO) run ./cmd/dstore-benchdiff BENCH_sim_engine.txt /tmp/dstore-bench-current.txt
