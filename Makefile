GO ?= go

# check is the gate every change must pass: static analysis, a full
# build, the full test suite, and a race-detector pass over the two
# packages that use (sweep runner) or feed (event kernel) concurrency.
.PHONY: check
check: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./internal/bench ./internal/sim

# bench regenerates the event-kernel microbenchmarks. Compare against
# the committed baseline in BENCH_sim_engine.txt before merging engine
# changes.
.PHONY: bench
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim

.PHONY: baseline
baseline:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim | tee BENCH_sim_engine.txt
