package dstore

import (
	"testing"

	"dstore/internal/memalloc"
)

// TestEndToEndPaperPipeline drives the paper's full §III flow on one
// program: automatic source translation, fixed-address allocation in
// the reserved range, TLB-detected pushes during the CPU produce
// phase, GPU consumption hitting the L2, and CPU readback via
// uncacheable remote loads.
func TestEndToEndPaperPipeline(t *testing.T) {
	const program = `
#define N 4096

__global__ void scale(float *in, float *out, int n);

int main() {
    float *in = (float *)malloc(N * sizeof(float));
    float *out;
    cudaMalloc(&out, N * sizeof(float));
    scale<<<16, 256>>>(in, out, N);
    return 0;
}
`
	// Step 1 (§III-C): automatic code translation.
	tr, err := Translate(map[string]string{"scale.cu": program}, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Allocs) != 2 {
		t.Fatalf("translator rewrote %d allocations, want 2 (in, out)", len(tr.Allocs))
	}

	// Step 2 (§III-D): the translated program's mmap calls reserve the
	// exact fixed addresses in the process address space.
	sys := NewSystem(DefaultConfig(DirectStore))
	var inBase, outBase Addr
	for _, al := range tr.Allocs {
		a, err := sys.Space.MmapFixed(Addr(al.Addr), al.Size, al.Var)
		if err != nil {
			t.Fatalf("mapping translated variable %s: %v", al.Var, err)
		}
		if !memalloc.InDirectRegion(a) {
			t.Fatalf("translated variable %s at %#x outside the reserved range", al.Var, al.Addr)
		}
		switch al.Var {
		case "in":
			inBase = a
		case "out":
			outBase = a
		}
	}
	if inBase == 0 || outBase == 0 {
		t.Fatal("translated variables not found")
	}
	size := tr.Allocs[0].Size

	// Step 3 (§III-E/F/G): the CPU produce loop. Every store's virtual
	// address is detected by the TLB and pushed over the dedicated
	// network into the GPU L2.
	var produce []CPUOp
	for off := uint64(0); off < size; off += 128 {
		produce = append(produce, CPUOp{Type: StoreOp, Addr: inBase + Addr(off)})
	}
	sys.RunCPU(produce)
	lines := uint64(len(produce))
	if got := sys.PushesReceived(); got != lines {
		t.Fatalf("pushes = %d, want %d (every produce store pushed)", got, lines)
	}
	if got := sys.Core.Counters().Get("stores"); got != 0 {
		t.Fatalf("%d stores took the cacheable path", got)
	}

	// Step 4: the kernel consumes `in` and writes `out`. First touches
	// must hit the pushed lines.
	const warps = 32
	per := int(lines) / warps
	var ws []Warp
	for w := 0; w < warps; w++ {
		var ops []WarpOp
		for i := 0; i < per; i++ {
			off := Addr((w*per + i) * 128)
			ops = append(ops,
				WarpOp{Kind: OpGlobalLoad, Addr: inBase + off, Lines: 1},
				WarpOp{Kind: OpCompute, Gap: 10},
				WarpOp{Kind: OpGlobalStore, Addr: outBase + off, Lines: 1})
		}
		ws = append(ws, Warp{Ops: ops})
	}
	sys.RunKernel(Kernel{Name: "scale", Warps: ws})
	// The `in` loads must all hit (pushed); only the `out` stores are
	// compulsory misses.
	if got := sys.GPUL2Misses(); got > lines {
		t.Errorf("GPU L2 misses = %d, want <= %d (only the out-store compulsories)", got, lines)
	}
	if acc := sys.GPUL2Accesses(); acc != 2*lines {
		t.Errorf("GPU L2 accesses = %d, want %d (in loads + out stores)", acc, 2*lines)
	}

	// Step 5: CPU reads the result back — uncacheable remote loads.
	var rb []CPUOp
	for off := uint64(0); off < size; off += 128 {
		rb = append(rb, CPUOp{Type: LoadOp, Addr: outBase + Addr(off)})
	}
	sys.RunCPU(rb)
	if got := sys.Core.Counters().Get("remote_loads"); got != lines {
		t.Errorf("remote loads = %d, want %d", got, lines)
	}
	if sys.CPUCtrl.L2Cache().ValidLines() != 0 {
		t.Error("direct-region data leaked into the CPU cache")
	}
}

// TestEndToEndVersionOracle checks functional correctness through the
// whole stack: the GPU observes exactly the versions the CPU pushed,
// and the CPU readback observes exactly what the GPU wrote.
func TestEndToEndVersionOracle(t *testing.T) {
	sys := NewSystem(DefaultConfig(DirectStore))
	base, err := sys.AllocShared(8*1024, "buf")
	if err != nil {
		t.Fatal(err)
	}
	var produce []CPUOp
	for a := base; a < base+8*1024; a += 128 {
		produce = append(produce, CPUOp{Type: StoreOp, Addr: a})
	}
	sys.RunCPU(produce)
	maxPush := uint64(len(produce))

	// Kernel reads all lines, then overwrites them with newer versions.
	var ops []WarpOp
	for a := base; a < base+8*1024; a += 128 {
		ops = append(ops, WarpOp{Kind: OpGlobalLoad, Addr: a, Lines: 1})
	}
	for a := base; a < base+8*1024; a += 128 {
		ops = append(ops, WarpOp{Kind: OpGlobalStore, Addr: a, Lines: 1})
	}
	sys.RunKernel(Kernel{Name: "rw", Warps: []Warp{{Ops: ops}}})

	// Every line must now hold a version strictly newer than any push:
	// the GPU's writes must not be lost to a push/fill/eviction race.
	for a := base; a < base+8*1024; a += 128 {
		pa, ok := sys.PT.Lookup(a)
		if !ok {
			t.Fatalf("va %#x unmapped", uint64(a))
		}
		found := false
		for _, sl := range sys.Slices {
			if sl.L2Cache().Contains(pa) {
				if v := sl.Ver(pa); v <= maxPush {
					t.Fatalf("line %#x version %d not newer than last push %d (GPU write lost)",
						uint64(pa), v, maxPush)
				}
				found = true
			}
		}
		if !found && sys.Mem.MemVer(pa) <= maxPush {
			t.Fatalf("line %#x in memory with version %d <= last push %d",
				uint64(pa), sys.Mem.MemVer(pa), maxPush)
		}
	}
}
